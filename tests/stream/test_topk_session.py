"""OnlineTopKSession: round-by-round streaming top-k mining."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DomainError, ProtocolError
from repro.stream import OnlineTopKSession


def _planted_stream(rng, c=3, d=256, n=90_000, weight=0.6):
    heavy = {label: [(label * 37 + j * 11) % d for j in range(3)] for label in range(c)}
    labels = rng.integers(0, c, n)
    items = rng.integers(0, d, n)
    for label, hitters in heavy.items():
        index = np.flatnonzero(labels == label)
        take = index[: int(weight * index.size)]
        items[take] = rng.choice(hitters, size=take.size)
    return labels, items, heavy


class TestConfiguration:
    def test_round_schedule_matches_pem(self):
        session = OnlineTopKSession(k=4, epsilon=2.0, n_classes=2, n_items=256)
        from repro.core.topk import pem_iteration_count

        assert session.n_rounds == pem_iteration_count(256, 4)

    def test_small_domain_single_round(self):
        session = OnlineTopKSession(k=8, epsilon=2.0, n_classes=2, n_items=10)
        assert session.n_rounds == 1
        assert session.depth == session.total_bits

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(k=0),
            dict(extension_bits=0),
            dict(invalid_mode="nope"),
            dict(mode="nope"),
            dict(keep=0),
        ],
    )
    def test_rejects_bad_config(self, kwargs):
        base = dict(k=2, epsilon=1.0, n_classes=2, n_items=16)
        base.update(kwargs)
        with pytest.raises((ConfigurationError, DomainError)):
            OnlineTopKSession(**base)

    def test_rejects_bad_batches(self):
        session = OnlineTopKSession(k=2, epsilon=1.0, n_classes=2, n_items=16)
        with pytest.raises(DomainError):
            session.ingest_batch([0, 1], [0])
        with pytest.raises(DomainError):
            session.ingest_batch([0, 5], [0, 1])
        with pytest.raises(DomainError):
            session.ingest_batch([0, 1], [0, 99])


class TestMining:
    @pytest.mark.parametrize("mode", ["simulate", "protocol"])
    def test_recovers_planted_heavy_hitters(self, mode):
        rng = np.random.default_rng(8)
        labels, items, heavy = _planted_stream(rng)
        session = OnlineTopKSession(
            k=3, epsilon=4.0, n_classes=3, n_items=256, mode=mode,
            rng=np.random.default_rng(21),
        )
        mined = session.run(labels, items)
        assert session.finished
        for label, hitters in heavy.items():
            assert set(mined[label]) == set(hitters)

    @pytest.mark.parametrize("invalid_mode", ["vp", "random"])
    def test_invalid_modes_both_mine(self, invalid_mode):
        rng = np.random.default_rng(9)
        labels, items, heavy = _planted_stream(rng, d=64, n=60_000, weight=0.7)
        session = OnlineTopKSession(
            k=3, epsilon=4.0, n_classes=3, n_items=64,
            invalid_mode=invalid_mode, rng=np.random.default_rng(5),
        )
        mined = session.run(labels, items)
        hits = sum(
            len(set(mined[label]) & set(hitters)) for label, hitters in heavy.items()
        )
        assert hits >= 7  # of 9 planted items

    def test_single_class_spends_whole_budget_on_items(self):
        session = OnlineTopKSession(k=2, epsilon=3.0, n_classes=1, n_items=32)
        assert session.epsilon2 == 3.0
        rng = np.random.default_rng(3)
        items = np.concatenate([np.full(30_000, 7), rng.integers(0, 32, 6_000)])
        labels = np.zeros(items.size, dtype=np.int64)
        mined = session.run(labels, items)
        assert mined[0][0] == 7


class TestRoundControl:
    def test_midstream_topk_and_depth_progression(self):
        rng = np.random.default_rng(4)
        labels, items, _heavy = _planted_stream(rng, n=30_000)
        session = OnlineTopKSession(
            k=3, epsilon=4.0, n_classes=3, n_items=256, rng=np.random.default_rng(2)
        )
        depth0 = session.depth
        session.ingest_batch(labels[:5000], items[:5000])
        preview = session.topk(2)
        assert set(preview) == {0, 1, 2}
        assert all(len(v) <= 2 for v in preview.values())
        assert all(0 <= p < (1 << session.depth) for v in preview.values() for p in v)
        session.advance_round()
        assert session.depth == depth0 + session.extension_bits
        assert session.round == 1
        assert session.round_ingested == 0
        assert session.n_ingested == 5000

    def test_finished_session_rejects_data_and_advances(self):
        session = OnlineTopKSession(k=2, epsilon=2.0, n_classes=2, n_items=4)
        assert session.n_rounds == 1
        session.ingest_batch([0, 1], [3, 2])
        session.advance_round()
        assert session.finished
        assert set(session.topk()) == {0, 1}
        # Post-finish topk honours any k, like the mid-stream query.
        assert all(len(v) == 2 for v in session.topk().values())
        assert all(len(v) == 4 for v in session.topk(9).values())
        with pytest.raises(ProtocolError):
            session.ingest_batch([0], [1])
        with pytest.raises(ProtocolError):
            session.advance_round()
        with pytest.raises(ProtocolError):
            session.run([0], [1])

    def test_frontier_is_a_copy(self):
        session = OnlineTopKSession(k=2, epsilon=2.0, n_classes=2, n_items=64)
        frontier = session.frontier(0)
        frontier[:] = -1
        assert (session.frontier(0) >= 0).all()

    def test_simulate_and_protocol_agree_on_an_easy_stream(self):
        """Both execution modes find the same dominant item."""
        rng = np.random.default_rng(6)
        items = np.concatenate([np.full(40_000, 13), rng.integers(0, 64, 8_000)])
        labels = rng.integers(0, 2, items.size)
        for mode in ("simulate", "protocol"):
            session = OnlineTopKSession(
                k=1, epsilon=4.0, n_classes=2, n_items=64, mode=mode,
                rng=np.random.default_rng(31),
            )
            mined = session.run(labels, items)
            assert mined[0] == [13]
            assert mined[1] == [13]


class TestAdaptiveAdvancement:
    """SNR-driven round control: advance when the pruning decision clears
    the noise floor instead of waiting for a fixed user budget."""

    def _session(self, seed=3, **overrides):
        kwargs = dict(k=3, epsilon=4.0, n_classes=3, n_items=256,
                      rng=np.random.default_rng(seed))
        kwargs.update(overrides)
        return OnlineTopKSession(**kwargs)

    def test_snr_zero_before_any_reports(self):
        session = self._session()
        assert session.round_snr() == 0.0
        assert not session.should_advance()

    def test_snr_infinite_when_no_decision_pending(self):
        # Frontier already at or below the keep width: nothing to prune.
        session = OnlineTopKSession(
            k=8, epsilon=2.0, n_classes=2, n_items=8,
            rng=np.random.default_rng(4),
        )
        session.ingest_batch(
            np.zeros(100, dtype=np.int64),
            np.arange(100, dtype=np.int64) % 8,
        )
        assert session.round_snr() == np.inf
        assert session.should_advance()

    def test_snr_separates_structure_from_noise(self):
        """At equal report volume, a stream whose heavy hitters occupy
        distinct prefixes scores far above a uniform stream: the SNR
        measures whether the round has resolved its pruning decision,
        not how many users arrived."""
        rng = np.random.default_rng(5)
        n = 4000
        labels = rng.integers(0, 3, n)
        # Three heavy items per class in three *different* depth-3
        # prefixes, so the keep boundary separates signal from noise.
        items = rng.choice(np.array([5, 70, 135]), size=n)
        noise = rng.random(n) < 0.2
        items[noise] = rng.integers(0, 256, int(noise.sum()))
        planted = self._session()
        planted.ingest_batch(labels, items)
        uniform = self._session(seed=12)
        uniform.ingest_batch(
            rng.integers(0, 3, n), rng.integers(0, 256, n)
        )
        assert planted.round_snr() > 2.0 * max(uniform.round_snr(), 0.5)
        assert planted.round_snr() > 3.0

    def test_adaptive_run_mines_planted_hitters(self):
        rng = np.random.default_rng(6)
        labels, items, heavy = _planted_stream(rng, c=3, d=256, n=90_000)
        session = self._session(seed=7)
        batch = 3000
        for start in range(0, labels.size, batch):
            if session.finished:
                break
            session.ingest_batch(
                labels[start : start + batch], items[start : start + batch]
            )
            session.maybe_advance(
                snr_threshold=3.0, min_round_users=batch,
                max_round_users=30_000,
            )
        while not session.finished:
            session.ingest_batch(labels[:batch], items[:batch])
            session.maybe_advance(
                snr_threshold=3.0, min_round_users=batch,
                max_round_users=30_000,
            )
        mined = session.topk()
        hits = sum(
            len(set(mined[label]) & set(hitters))
            for label, hitters in heavy.items()
        )
        assert hits >= 6  # 9 planted across 3 classes

    def test_max_round_users_forces_advance_on_flat_stream(self):
        rng = np.random.default_rng(8)
        session = self._session(seed=9)
        round_before = session.round
        # Uniform items: no prunable structure, SNR stays low.
        session.ingest_batch(
            rng.integers(0, 3, 5000), rng.integers(0, 256, 5000)
        )
        assert not session.should_advance(snr_threshold=50.0)
        assert session.should_advance(
            snr_threshold=50.0, max_round_users=5000
        )
        assert session.maybe_advance(snr_threshold=50.0, max_round_users=5000)
        assert session.round == round_before + 1

    def test_min_round_users_blocks_early_advance(self):
        session = self._session()
        session.ingest_batch(
            np.zeros(10, dtype=np.int64), np.arange(10, dtype=np.int64)
        )
        assert not session.should_advance(min_round_users=100)

    def test_threshold_validation_and_finished_behaviour(self):
        session = OnlineTopKSession(
            k=4, epsilon=2.0, n_classes=2, n_items=8,
            rng=np.random.default_rng(10),
        )
        with pytest.raises(ConfigurationError):
            session.should_advance(snr_threshold=0.0)
        session.ingest_batch(
            np.zeros(50, dtype=np.int64), np.arange(50, dtype=np.int64) % 8
        )
        while not session.finished:
            session.advance_round()
        assert not session.should_advance()
        assert not session.maybe_advance()
        with pytest.raises(ProtocolError):
            session.round_snr()

    def test_round_class_n_tracks_routed_reports_and_resets(self):
        session = self._session(seed=11)
        session.ingest_batch(
            np.zeros(1000, dtype=np.int64), np.zeros(1000, dtype=np.int64)
        )
        assert int(session._round_class_n.sum()) == 1000
        session.advance_round()
        assert int(session._round_class_n.sum()) == 0
