"""OnlineTopKSession checkpointing: save/restore round-trips mid-round
and resumed mining is deterministic in the restored generator."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.stream import OnlineTopKSession, save_state


def _population(n=3000, c=3, d=64, seed=5):
    rng = np.random.default_rng(seed)
    return rng.integers(0, c, size=n), rng.integers(0, d, size=n)


def _make(mode="simulate", seed=7):
    return OnlineTopKSession(
        k=4, epsilon=2.0, n_classes=3, n_items=64,
        mode=mode, rng=np.random.default_rng(seed),
    )


class TestRoundTrip:
    @pytest.mark.parametrize("mode", ["simulate", "protocol"])
    def test_mid_round_state_round_trips_exactly(self, tmp_path, mode):
        labels, items = _population()
        session = _make(mode)
        session.ingest_batch(labels[:1000], items[:1000])
        session.advance_round()
        session.ingest_batch(labels[1000:1800], items[1000:1800])

        path = tmp_path / "topk.npz"
        session.save(path)
        restored = OnlineTopKSession.restore(path, rng=np.random.default_rng(1))

        assert restored.round == session.round
        assert restored.depth == session.depth
        assert restored.round_ingested == session.round_ingested
        assert restored.n_ingested == session.n_ingested
        assert restored.n_rounds == session.n_rounds
        for label in range(3):
            np.testing.assert_array_equal(
                restored.frontier(label), session.frontier(label)
            )
            np.testing.assert_array_equal(
                restored._support[label], session._support[label]
            )
        assert restored.topk() == session.topk()

    def test_resumed_mining_is_deterministic(self, tmp_path):
        """Two restores of the same checkpoint fed the same reports with
        identically seeded generators finish on identical rankings."""
        labels, items = _population()
        session = _make()
        session.ingest_batch(labels[:1200], items[:1200])
        path = tmp_path / "mid.npz"
        session.save(path)

        finals = []
        for _ in range(2):
            twin = OnlineTopKSession.restore(path, rng=np.random.default_rng(33))
            cursor = 1200
            while not twin.finished:
                step = min(600, labels.size - cursor)
                if step > 0:
                    twin.ingest_batch(
                        labels[cursor : cursor + step],
                        items[cursor : cursor + step],
                    )
                    cursor += step
                twin.advance_round()
            finals.append(twin.topk())
        assert finals[0] == finals[1]

    def test_finished_session_round_trips_result(self, tmp_path):
        labels, items = _population(n=4000)
        session = _make()
        mined = session.run(labels, items)
        path = tmp_path / "done.npz"
        session.save(path)
        restored = OnlineTopKSession.restore(path)
        assert restored.finished
        assert restored.topk() == mined
        assert restored.topk(2) == {c: v[:2] for c, v in mined.items()}


class TestValidation:
    def test_rejects_framework_checkpoint(self, tmp_path):
        from repro.stream import make_session

        other = make_session("ptj", epsilon=1.0, n_classes=2, n_items=8,
                             rng=np.random.default_rng(0))
        other.ingest_batch([0, 1], [1, 2])
        path = tmp_path / "ptj.npz"
        other.save(path)
        with pytest.raises(ConfigurationError):
            OnlineTopKSession.restore(path)

    def test_rejects_missing_class_arrays(self, tmp_path):
        session = _make()
        path = tmp_path / "broken.npz"
        session.save(path)
        from repro.stream import load_state

        meta, arrays = load_state(path)
        del arrays["candidates_2"]
        save_state(path, meta, arrays)
        with pytest.raises(ConfigurationError):
            OnlineTopKSession.restore(path)
