"""Online sessions: streamed == one-shot (in distribution), queries,
merging, checkpoint round-trips."""

import numpy as np
import pytest

from repro.core.frameworks import make_framework
from repro.core.topk import topk_per_class
from repro.exceptions import ConfigurationError, DomainError, ProtocolError
from repro.stream import (
    SESSIONS,
    OnlineFrameworkSession,
    OnlinePTS,
    ShardedAggregator,
    make_session,
)

FRAMEWORKS = ("hec", "ptj", "pts", "pts-cp")


def _streamed_trials(name, dataset, n_trials, mode="simulate", batch_size=4096, seed0=400):
    out = []
    for trial in range(n_trials):
        session = make_session(
            name,
            epsilon=2.0,
            n_classes=dataset.n_classes,
            n_items=dataset.n_items,
            mode=mode,
            rng=np.random.default_rng(seed0 + trial),
        )
        session.ingest_dataset(dataset, batch_size=batch_size)
        out.append(session.estimate())
    return np.stack(out)


def _oneshot_trials(name, dataset, n_trials, seed0=9000):
    framework = make_framework(
        name, epsilon=2.0, n_classes=dataset.n_classes, n_items=dataset.n_items
    )
    return np.stack(
        [
            framework.estimate_frequencies(dataset, rng=np.random.default_rng(seed0 + t))
            for t in range(n_trials)
        ]
    )


class TestOneShotEquivalence:
    """Acceptance: streaming all batches matches the one-shot
    estimate_frequencies output distribution (seeded mean agreement)."""

    @pytest.mark.parametrize("name", FRAMEWORKS)
    def test_streamed_matches_oneshot_distribution(self, name, small_dataset):
        streamed = _streamed_trials(name, small_dataset, 40)
        oneshot = _oneshot_trials(name, small_dataset, 40)
        sigma = np.sqrt(streamed.var(axis=0) / 40 + oneshot.var(axis=0) / 40)
        diff = np.abs(streamed.mean(axis=0) - oneshot.mean(axis=0))
        assert (diff < 5 * sigma + 1e-9).all()

    @pytest.mark.parametrize("name", FRAMEWORKS)
    def test_protocol_mode_agrees_with_simulate(self, name, rng):
        counts = rng.multinomial(1500, np.ones(6) / 6).reshape(2, 3)
        from repro.datasets import LabelItemDataset

        data = LabelItemDataset.from_pair_counts(counts, rng=rng)
        simulated = _streamed_trials(name, data, 60, mode="simulate", batch_size=256)
        protocol = _streamed_trials(
            name, data, 30, mode="protocol", batch_size=256, seed0=7000
        )
        sigma = np.sqrt(simulated.var(axis=0) / 60 + protocol.var(axis=0) / 30)
        diff = np.abs(simulated.mean(axis=0) - protocol.mean(axis=0))
        assert (diff < 5 * sigma + 1e-9).all()

    def test_batch_split_is_irrelevant_in_distribution(self, small_dataset):
        """Means agree across batch sizes (LDP noise is iid per user)."""
        coarse = _streamed_trials("ptj", small_dataset, 40, batch_size=30_000)
        fine = _streamed_trials("ptj", small_dataset, 40, batch_size=1024, seed0=5500)
        sigma = np.sqrt(coarse.var(axis=0) / 40 + fine.var(axis=0) / 40)
        diff = np.abs(coarse.mean(axis=0) - fine.mean(axis=0))
        assert (diff < 5 * sigma + 1e-9).all()


class TestOnlineQueries:
    def test_estimate_available_mid_stream(self, small_dataset):
        session = make_session(
            "pts-cp", epsilon=2.0, n_classes=3, n_items=8,
            rng=np.random.default_rng(11),
        )
        session.ingest_batch(small_dataset.labels[:8000], small_dataset.items[:8000])
        early = session.estimate()
        assert early.shape == (3, 8)
        session.ingest_batch(small_dataset.labels[8000:], small_dataset.items[8000:])
        assert session.n_ingested == small_dataset.n_users
        assert session.estimate().shape == (3, 8)

    def test_topk_matches_estimate_ordering(self, small_dataset):
        session = make_session(
            "ptj", epsilon=4.0, n_classes=3, n_items=8, rng=np.random.default_rng(5)
        )
        session.ingest_dataset(small_dataset)
        assert session.topk(3) == topk_per_class(session.estimate(), 3)

    def test_topk_recovers_strong_head(self, rng):
        """With a dominant item per class and a generous budget the online
        top-1 query finds it."""
        counts = np.full((2, 10), 50, dtype=np.int64)
        counts[0, 3] = 20_000
        counts[1, 7] = 20_000
        from repro.datasets import LabelItemDataset

        data = LabelItemDataset.from_pair_counts(counts, rng=rng)
        session = make_session(
            "pts-cp", epsilon=6.0, n_classes=2, n_items=10,
            rng=np.random.default_rng(21),
        )
        session.ingest_dataset(data, batch_size=8192)
        top = session.topk(1)
        assert top[0] == [3] and top[1] == [7]

    def test_class_sizes(self, small_dataset):
        session = make_session(
            "pts", epsilon=2.0, n_classes=3, n_items=8, rng=np.random.default_rng(9)
        )
        session.ingest_dataset(small_dataset)
        sizes = session.class_sizes()
        truth = small_dataset.class_counts()
        assert sizes.shape == (3,)
        # GRR label inversion at eps1=1 over 30k users: generous 5-sigma-ish band.
        assert np.abs(sizes - truth).max() < 1200

    def test_estimate_before_data_rejected(self):
        for name in FRAMEWORKS:
            session = make_session(name, epsilon=1.0, n_classes=3, n_items=8)
            with pytest.raises(ProtocolError):
                session.estimate()

    def test_hec_needs_every_group_served(self):
        session = make_session(
            "hec", epsilon=1.0, n_classes=8, n_items=4, mode="protocol",
            rng=np.random.default_rng(0),
        )
        session.ingest_batch(np.asarray([0]), np.asarray([0]))
        with pytest.raises(ProtocolError):
            session.estimate()


class TestMergeAndSharding:
    def test_merge_is_commutative_and_counts_add(self, small_dataset):
        half = small_dataset.n_users // 2
        rngs = [np.random.default_rng(s) for s in (1, 2)]
        a = make_session("pts", epsilon=2.0, n_classes=3, n_items=8, rng=rngs[0])
        b = make_session("pts", epsilon=2.0, n_classes=3, n_items=8, rng=rngs[1])
        a.ingest_batch(small_dataset.labels[:half], small_dataset.items[:half])
        b.ingest_batch(small_dataset.labels[half:], small_dataset.items[half:])
        ab, ba = a.merge(b), b.merge(a)
        assert ab.n_ingested == ba.n_ingested == small_dataset.n_users
        np.testing.assert_array_equal(ab.estimate(), ba.estimate())

    def test_merge_rejects_mismatched_sessions(self):
        a = make_session("pts", epsilon=2.0, n_classes=3, n_items=8)
        with pytest.raises(ConfigurationError):
            a.merge(make_session("ptj", epsilon=2.0, n_classes=3, n_items=8))
        with pytest.raises(ConfigurationError):
            a.merge(make_session("pts", epsilon=1.0, n_classes=3, n_items=8))
        with pytest.raises(ConfigurationError):
            a.merge(
                make_session("pts", epsilon=2.0, n_classes=3, n_items=8,
                             label_fraction=0.3)
            )

    @pytest.mark.parametrize("name", FRAMEWORKS)
    def test_sharded_sessions_stay_unbiased(self, name, small_dataset):
        """Fanning batches across shards and merging keeps the estimator's
        mean on the truth (HEC: up to its Theorem-4 bias)."""
        trials = []
        for trial in range(30):
            children = [np.random.default_rng(trial * 10 + s) for s in range(3)]
            shards = [
                make_session(name, epsilon=2.0, n_classes=3, n_items=8, rng=child)
                for child in children
            ]
            with ShardedAggregator(shards) as agg:
                agg.ingest(
                    (small_dataset.labels[i : i + 2048],
                     small_dataset.items[i : i + 2048])
                    for i in range(0, small_dataset.n_users, 2048)
                )
                trials.append(agg.merged().estimate())
        trials = np.stack(trials)
        truth = small_dataset.pair_counts().astype(np.float64)
        if name == "hec":
            truth = truth + (
                (small_dataset.n_users - small_dataset.class_counts())
                / small_dataset.n_items
            )[:, None]
        spread = trials.std(axis=0).max() / np.sqrt(30)
        bias = np.abs(trials.mean(axis=0) - truth)
        assert bias.max() < 6 * spread


class TestCheckpoint:
    @pytest.mark.parametrize("name", FRAMEWORKS)
    def test_round_trip_preserves_estimates(self, name, small_dataset, tmp_path):
        session = make_session(
            name, epsilon=2.0, n_classes=3, n_items=8, rng=np.random.default_rng(31)
        )
        session.ingest_dataset(small_dataset, batch_size=8192)
        path = tmp_path / f"{name}-state"
        session.save(path)
        restored = OnlineFrameworkSession.load(path)
        assert type(restored) is SESSIONS[name]
        assert restored.n_ingested == session.n_ingested
        np.testing.assert_array_equal(restored.estimate(), session.estimate())

    def test_restored_session_keeps_ingesting(self, small_dataset, tmp_path):
        half = small_dataset.n_users // 2
        session = make_session(
            "ptj", epsilon=2.0, n_classes=3, n_items=8, rng=np.random.default_rng(41)
        )
        session.ingest_batch(small_dataset.labels[:half], small_dataset.items[:half])
        path = tmp_path / "partial"
        session.save(path)
        restored = OnlineFrameworkSession.load(path, rng=np.random.default_rng(42))
        restored.ingest_batch(small_dataset.labels[half:], small_dataset.items[half:])
        assert restored.n_ingested == small_dataset.n_users
        assert restored.estimate().shape == (3, 8)

    def test_label_fraction_survives_round_trip(self, small_dataset, tmp_path):
        session = make_session(
            "pts", epsilon=2.0, n_classes=3, n_items=8, label_fraction=0.3,
            rng=np.random.default_rng(43),
        )
        session.ingest_dataset(small_dataset)
        path = tmp_path / "fraction"
        session.save(path)
        restored = OnlineFrameworkSession.load(path)
        assert isinstance(restored, OnlinePTS)
        assert restored.label_fraction == pytest.approx(0.3)
        np.testing.assert_array_equal(restored.estimate(), session.estimate())

    def test_typed_load_rejects_wrong_framework(self, small_dataset, tmp_path):
        session = make_session(
            "pts", epsilon=2.0, n_classes=3, n_items=8, rng=np.random.default_rng(44)
        )
        session.ingest_dataset(small_dataset)
        path = tmp_path / "typed"
        session.save(path)
        from repro.stream import OnlinePTJ

        with pytest.raises(ConfigurationError):
            OnlinePTJ.load(path)


class TestConstruction:
    def test_registry_mirrors_frameworks(self):
        assert set(SESSIONS) == {"hec", "ptj", "pts", "pts-cp"}

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            make_session("nope", epsilon=1.0, n_classes=2, n_items=4)

    def test_label_fraction_only_for_split_frameworks(self):
        with pytest.raises(ConfigurationError):
            make_session("ptj", epsilon=1.0, n_classes=2, n_items=4, label_fraction=0.3)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            make_session("ptj", epsilon=1.0, n_classes=2, n_items=4, mode="telepathy")

    def test_domain_validation_on_ingest(self):
        session = make_session("ptj", epsilon=1.0, n_classes=2, n_items=4)
        with pytest.raises(DomainError):
            session.ingest_batch(np.asarray([0, 2]), np.asarray([0, 0]))
        with pytest.raises(DomainError):
            session.ingest_batch(np.asarray([0]), np.asarray([4]))
        with pytest.raises(DomainError):
            session.ingest_batch(np.asarray([0, 1]), np.asarray([0]))

    def test_dataset_domain_mismatch_rejected(self, small_dataset):
        session = make_session("ptj", epsilon=1.0, n_classes=5, n_items=5)
        with pytest.raises(ConfigurationError):
            session.ingest_dataset(small_dataset)

    def test_framework_builds_matching_session(self):
        framework = make_framework(
            "pts-cp", epsilon=2.0, n_classes=3, n_items=8, label_fraction=0.4
        )
        session = framework.streaming_session(rng=np.random.default_rng(3))
        assert session.name == "pts-cp"
        assert session.epsilon == pytest.approx(2.0)
        assert session.label_fraction == pytest.approx(0.4)
        session.ingest_batch(np.asarray([0, 1, 2]), np.asarray([1, 2, 3]))
        assert session.n_ingested == 3
