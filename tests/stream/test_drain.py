"""Drain adapters: uniform submit/drain/snapshot over sharded sessions
and the top-k miner, drain-log replay exactness, and the decay hook."""

import numpy as np
import pytest
from functools import reduce

from repro.exceptions import ConfigurationError
from repro.rng import ensure_rng, spawn
from repro.stream import (
    DECAY_EVENT,
    AggregatorDrain,
    OnlineTopKSession,
    SessionDrain,
    ShardedAggregator,
    make_session,
    replay_drain_log,
)


def _batches(n=4000, c=3, d=32, seed=2, batch=512):
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, c, size=n)
    items = rng.integers(0, d, size=n)
    return [
        (labels[i : i + batch], items[i : i + batch])
        for i in range(0, n, batch)
    ]


def _shards(seed, n_shards, mode="protocol"):
    return [
        make_session("ptj", epsilon=1.0, n_classes=3, n_items=32,
                     mode=mode, rng=child)
        for child in spawn(ensure_rng(seed), n_shards)
    ]


class TestAggregatorDrain:
    def test_drain_log_replays_to_exact_merged_state(self):
        batches = _batches()
        with AggregatorDrain(
            ShardedAggregator(_shards(11, 2)), record=True
        ) as drain:
            for labels, items in batches:
                drain.submit(labels, items)
            assert drain.drain() == 4000
            live = drain.snapshot()
            log = list(drain.drain_log)

        twins = replay_drain_log(log, _shards(11, 2))
        offline = reduce(lambda a, b: a.merge(b), twins)
        np.testing.assert_array_equal(offline._support, live._support)
        np.testing.assert_array_equal(offline.estimate(), live.estimate())

    def test_round_robin_covers_all_shards(self):
        drain = AggregatorDrain(ShardedAggregator(_shards(3, 3)), record=True)
        for labels, items in _batches(n=1500, batch=250):
            drain.submit(labels, items)
        drain.drain()
        assert {entry[0] for entry in drain.drain_log} == {0, 1, 2}
        drain.close()

    def test_decay_hook_ages_counts(self):
        drain = AggregatorDrain(
            ShardedAggregator(_shards(5, 2, mode="simulate")),
            decay=0.5,
            decay_every=1000,
        )
        for labels, items in _batches(n=2000):
            drain.submit(labels, items)
        drain.drain()
        snap = drain.snapshot()
        # One decay pass at least: far fewer effective users than ingested.
        assert snap.n_ingested <= 1200
        drain.close()

    def test_snapshot_credits_drain_and_applies_decay(self):
        """snapshot() without an explicit drain() still counts the drained
        reports and applies due decay periods (it must route through the
        adapter's drain, not just the aggregator's)."""
        drain = AggregatorDrain(
            ShardedAggregator(_shards(8, 2, mode="simulate")),
            decay=0.5,
            decay_every=1000,
        )
        for labels, items in _batches(n=2000):
            drain.submit(labels, items)
        snap = drain.snapshot()  # no explicit drain() beforehand
        assert drain.n_drained == 2000
        assert snap.n_ingested <= 1200
        drain.close()

    def test_decay_periods_track_report_count(self):
        """A drain spanning several decay periods compounds the factor
        (not one pass per drain), and the partial period carries into the
        next drain instead of being dropped."""
        drain = AggregatorDrain(
            ShardedAggregator(_shards(7, 1, mode="simulate")),
            decay=0.5,
            decay_every=1000,
        )
        big = np.zeros(4000, dtype=np.int64)
        drain.submit(big, big)
        drain.drain()
        after_big = drain.snapshot().n_ingested
        # Four compounded periods: ~4000 * 0.5**4 = 250.  A single 0.5
        # pass (the drain-cadence bug) would leave 2000.
        assert after_big <= 500

        part = np.zeros(600, dtype=np.int64)
        drain.submit(part, part)
        drain.drain()
        # 600 into the open period: no decay yet.
        assert drain.snapshot().n_ingested == after_big + 600

        drain.submit(part, part)
        drain.drain()
        # 1200 accumulated crosses one boundary exactly once.
        assert drain.snapshot().n_ingested <= (after_big + 1200) * 0.5 + 5
        drain.close()

    def test_decayed_drain_log_replays_bit_identically(self):
        """Decay passes land in the drain log as explicit events, so an
        offline replay of a decayed run reproduces the live state exactly
        — including every integer rounding pass."""
        batches = _batches(seed=21)
        with AggregatorDrain(
            ShardedAggregator(_shards(13, 2, mode="simulate")),
            decay=0.7,
            decay_every=900,
            record=True,
        ) as drain:
            for labels, items in batches:
                drain.submit(labels, items)
                drain.drain()  # drain per batch: several decay ticks land
            live = drain.snapshot()
            log = list(drain.drain_log)

        decay_events = [entry for entry in log if entry[0] == DECAY_EVENT]
        assert decay_events, "the schedule must have ticked at least once"
        assert all(factor == 0.7 for _, factor, _ in decay_events)

        twins = replay_drain_log(log, _shards(13, 2, mode="simulate"))
        offline = reduce(lambda a, b: a.merge(b), twins)
        assert offline.n_ingested == live.n_ingested
        np.testing.assert_array_equal(offline._support, live._support)
        np.testing.assert_array_equal(offline.estimate(), live.estimate())

    def test_compounded_factor_is_logged_not_the_knob(self):
        """A single drain spanning several periods logs one event with
        the compounded factor, so replay applies the same single rounding
        pass the live run did."""
        drain = AggregatorDrain(
            ShardedAggregator(_shards(14, 1, mode="simulate")),
            decay=0.5,
            decay_every=1000,
            record=True,
        )
        big = np.zeros(3000, dtype=np.int64)
        drain.submit(big, big)
        drain.drain()
        events = [e for e in drain.drain_log if e[0] == DECAY_EVENT]
        assert len(events) == 1
        assert events[0][1] == pytest.approx(0.5**3)
        drain.close()

    def test_window_knob_derives_decay_schedule(self):
        drain = AggregatorDrain(
            ShardedAggregator(_shards(15, 1, mode="simulate")), window=4000
        )
        assert drain.window_policy is not None
        assert drain.decay_every == 500
        assert drain.decay == pytest.approx(1.0 - 500 / 4000)
        # Stream far more than the window: retained mass stays bounded
        # near the target instead of growing with the stream.
        big = np.zeros(20_000, dtype=np.int64)
        drain.submit(big, big)
        drain.drain()
        assert drain.snapshot().n_ingested <= 4000
        drain.close()

    def test_window_exclusive_with_raw_knobs(self):
        agg = ShardedAggregator(_shards(16, 1, mode="simulate"))
        with pytest.raises(ConfigurationError):
            AggregatorDrain(agg, window=1000, decay=0.5, decay_every=10)
        agg.close()

    def test_out_of_band_age_bumps_generation_and_logs(self):
        drain = AggregatorDrain(
            ShardedAggregator(_shards(17, 1, mode="simulate")), record=True
        )
        batch = np.zeros(500, dtype=np.int64)
        drain.submit(batch, batch)
        assert drain.generation == 0
        drain.age(0.5)  # drains pending work first, then ages
        assert drain.generation == 1
        assert drain.n_drained == 500
        assert drain.snapshot().n_ingested == 250
        assert drain.drain_log[-1][0] == DECAY_EVENT
        # A no-op factor neither logs nor bumps the generation.
        drain.age(1.0)
        assert drain.generation == 1
        with pytest.raises(ConfigurationError):
            drain.age(0.0)
        drain.close()

    def test_decay_requires_both_knobs(self):
        agg = ShardedAggregator(_shards(6, 1))
        with pytest.raises(ConfigurationError):
            AggregatorDrain(agg, decay=0.9)
        with pytest.raises(ConfigurationError):
            AggregatorDrain(agg, decay=1.5, decay_every=10)
        agg.close()


class TestSessionDrain:
    def test_topk_target_fifo_and_snapshot(self):
        session = OnlineTopKSession(
            k=3, epsilon=2.0, n_classes=2, n_items=16,
            rng=np.random.default_rng(8),
        )
        drain = SessionDrain(session, record=True)
        for labels, items in _batches(n=1000, c=2, d=16, batch=200):
            drain.submit(labels, items)
        snap = drain.snapshot()  # drains pending work first
        assert snap is session
        assert session.round_ingested == 1000
        assert len(drain.drain_log) == 5
        drain.close()

    def test_decay_rejected_for_targets_without_decay(self):
        session = OnlineTopKSession(
            k=2, epsilon=1.0, n_classes=2, n_items=8,
            rng=np.random.default_rng(9),
        )
        with pytest.raises(ConfigurationError):
            SessionDrain(session, decay=0.9, decay_every=10)


class TestSessionDecay:
    def test_decay_scales_counters_and_estimates_stay_calibrated(self):
        session = make_session("pts", epsilon=2.0, n_classes=2, n_items=16,
                               rng=np.random.default_rng(10))
        labels = np.repeat([0, 1], 2000)
        items = np.zeros(4000, dtype=np.int64)
        session.ingest_batch(labels, items)
        before = session.estimate().sum()
        session.decay(0.5)
        assert session.n_ingested == 2000
        after = session.estimate().sum()
        # Total estimated mass halves with the user count.
        assert after == pytest.approx(before * 0.5, rel=0.15)

    def test_decay_validates_factor(self):
        session = make_session("ptj", epsilon=1.0, n_classes=2, n_items=8)
        for bad in (0.0, -0.1, 1.5):
            with pytest.raises(ConfigurationError):
                session.decay(bad)
        session.decay(1.0)  # no-op

    @pytest.mark.parametrize("framework", ["ptj", "pts", "pts-cp", "hec"])
    def test_long_decay_schedule_on_tiny_cohort_never_degenerates(
        self, framework
    ):
        """Regression: rounding could drive the user count to 0 while
        support mass survived, making every calibration degenerate.  The
        count now stays clamped to >= 1 whenever any counter is nonzero,
        so estimates and variances remain finite through an arbitrarily
        long decay schedule."""
        session = make_session(
            framework, epsilon=2.0, n_classes=2, n_items=8,
            mode="simulate", rng=np.random.default_rng(42),
        )
        labels = np.array([0, 0, 1, 0, 1], dtype=np.int64)
        items = np.array([1, 2, 3, 1, 0], dtype=np.int64)
        session.ingest_batch((labels, items))
        for _ in range(60):
            session.decay(0.45)
            any_nonzero = any(
                getattr(session, "_" + field).any()
                for field in session._STATE_FIELDS
            )
            if any_nonzero:
                assert session.n_ingested >= 1
                if framework == "hec" and not getattr(
                    session, "_group_sizes"
                ).all():
                    continue  # HEC refuses estimates with an empty group
                assert np.isfinite(session.estimate()).all()
                assert np.isfinite(session.estimate_variance()).all()
            else:
                # Once every counter reached zero the count may too.
                assert session.n_ingested >= 0
        # 0.45**60 annihilates everything: the schedule must terminate
        # with a genuinely empty session, not a stuck count.
        assert not any(
            getattr(session, "_" + field).any()
            for field in session._STATE_FIELDS
        )
        assert session.n_ingested == 0
