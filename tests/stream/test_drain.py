"""Drain adapters: uniform submit/drain/snapshot over sharded sessions
and the top-k miner, drain-log replay exactness, and the decay hook."""

import numpy as np
import pytest
from functools import reduce

from repro.exceptions import ConfigurationError
from repro.rng import ensure_rng, spawn
from repro.stream import (
    AggregatorDrain,
    OnlineTopKSession,
    SessionDrain,
    ShardedAggregator,
    make_session,
    replay_drain_log,
)


def _batches(n=4000, c=3, d=32, seed=2, batch=512):
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, c, size=n)
    items = rng.integers(0, d, size=n)
    return [
        (labels[i : i + batch], items[i : i + batch])
        for i in range(0, n, batch)
    ]


def _shards(seed, n_shards, mode="protocol"):
    return [
        make_session("ptj", epsilon=1.0, n_classes=3, n_items=32,
                     mode=mode, rng=child)
        for child in spawn(ensure_rng(seed), n_shards)
    ]


class TestAggregatorDrain:
    def test_drain_log_replays_to_exact_merged_state(self):
        batches = _batches()
        with AggregatorDrain(
            ShardedAggregator(_shards(11, 2)), record=True
        ) as drain:
            for labels, items in batches:
                drain.submit(labels, items)
            assert drain.drain() == 4000
            live = drain.snapshot()
            log = list(drain.drain_log)

        twins = replay_drain_log(log, _shards(11, 2))
        offline = reduce(lambda a, b: a.merge(b), twins)
        np.testing.assert_array_equal(offline._support, live._support)
        np.testing.assert_array_equal(offline.estimate(), live.estimate())

    def test_round_robin_covers_all_shards(self):
        drain = AggregatorDrain(ShardedAggregator(_shards(3, 3)), record=True)
        for labels, items in _batches(n=1500, batch=250):
            drain.submit(labels, items)
        drain.drain()
        assert {entry[0] for entry in drain.drain_log} == {0, 1, 2}
        drain.close()

    def test_decay_hook_ages_counts(self):
        drain = AggregatorDrain(
            ShardedAggregator(_shards(5, 2, mode="simulate")),
            decay=0.5,
            decay_every=1000,
        )
        for labels, items in _batches(n=2000):
            drain.submit(labels, items)
        drain.drain()
        snap = drain.snapshot()
        # One decay pass at least: far fewer effective users than ingested.
        assert snap.n_ingested <= 1200
        drain.close()

    def test_snapshot_credits_drain_and_applies_decay(self):
        """snapshot() without an explicit drain() still counts the drained
        reports and applies due decay periods (it must route through the
        adapter's drain, not just the aggregator's)."""
        drain = AggregatorDrain(
            ShardedAggregator(_shards(8, 2, mode="simulate")),
            decay=0.5,
            decay_every=1000,
        )
        for labels, items in _batches(n=2000):
            drain.submit(labels, items)
        snap = drain.snapshot()  # no explicit drain() beforehand
        assert drain.n_drained == 2000
        assert snap.n_ingested <= 1200
        drain.close()

    def test_decay_periods_track_report_count(self):
        """A drain spanning several decay periods compounds the factor
        (not one pass per drain), and the partial period carries into the
        next drain instead of being dropped."""
        drain = AggregatorDrain(
            ShardedAggregator(_shards(7, 1, mode="simulate")),
            decay=0.5,
            decay_every=1000,
        )
        big = np.zeros(4000, dtype=np.int64)
        drain.submit(big, big)
        drain.drain()
        after_big = drain.snapshot().n_ingested
        # Four compounded periods: ~4000 * 0.5**4 = 250.  A single 0.5
        # pass (the drain-cadence bug) would leave 2000.
        assert after_big <= 500

        part = np.zeros(600, dtype=np.int64)
        drain.submit(part, part)
        drain.drain()
        # 600 into the open period: no decay yet.
        assert drain.snapshot().n_ingested == after_big + 600

        drain.submit(part, part)
        drain.drain()
        # 1200 accumulated crosses one boundary exactly once.
        assert drain.snapshot().n_ingested <= (after_big + 1200) * 0.5 + 5
        drain.close()

    def test_decay_requires_both_knobs(self):
        agg = ShardedAggregator(_shards(6, 1))
        with pytest.raises(ConfigurationError):
            AggregatorDrain(agg, decay=0.9)
        with pytest.raises(ConfigurationError):
            AggregatorDrain(agg, decay=1.5, decay_every=10)
        agg.close()


class TestSessionDrain:
    def test_topk_target_fifo_and_snapshot(self):
        session = OnlineTopKSession(
            k=3, epsilon=2.0, n_classes=2, n_items=16,
            rng=np.random.default_rng(8),
        )
        drain = SessionDrain(session, record=True)
        for labels, items in _batches(n=1000, c=2, d=16, batch=200):
            drain.submit(labels, items)
        snap = drain.snapshot()  # drains pending work first
        assert snap is session
        assert session.round_ingested == 1000
        assert len(drain.drain_log) == 5
        drain.close()

    def test_decay_rejected_for_targets_without_decay(self):
        session = OnlineTopKSession(
            k=2, epsilon=1.0, n_classes=2, n_items=8,
            rng=np.random.default_rng(9),
        )
        with pytest.raises(ConfigurationError):
            SessionDrain(session, decay=0.9, decay_every=10)


class TestSessionDecay:
    def test_decay_scales_counters_and_estimates_stay_calibrated(self):
        session = make_session("pts", epsilon=2.0, n_classes=2, n_items=16,
                               rng=np.random.default_rng(10))
        labels = np.repeat([0, 1], 2000)
        items = np.zeros(4000, dtype=np.int64)
        session.ingest_batch(labels, items)
        before = session.estimate().sum()
        session.decay(0.5)
        assert session.n_ingested == 2000
        after = session.estimate().sum()
        # Total estimated mass halves with the user count.
        assert after == pytest.approx(before * 0.5, rel=0.15)

    def test_decay_validates_factor(self):
        session = make_session("ptj", epsilon=1.0, n_classes=2, n_items=8)
        for bad in (0.0, -0.1, 1.5):
            with pytest.raises(ConfigurationError):
                session.decay(bad)
        session.decay(1.0)  # no-op
