"""Zero-copy shared-memory shard transport: the pack/attach codec and
the ShardedAggregator process-mode transports built on it.

The acceptance bar for the transport swap is *exactness*: counts through
``transport="shm"`` must equal counts through ``transport="pickle"`` and
through the thread executor, batch for batch — the transport moves
bytes, never semantics.
"""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.mechanisms import GeneralizedRandomResponse
from repro.obs import metrics as obs_metrics
from repro.rng import spawn
from repro.stream import ShardedAggregator, make_session
from repro.stream import shm
from repro.stream.sharding import resolve_transport


def _has_ndarray(node) -> bool:
    if isinstance(node, np.ndarray):
        return True
    if isinstance(node, (list, tuple)):
        return any(_has_ndarray(child) for child in node)
    return False


class TestPackAttachRoundTrip:
    def test_array_batches_round_trip(self):
        batches = [
            np.arange(10, dtype=np.int64),
            np.linspace(0.0, 1.0, 7),
            (np.arange(6, dtype=np.uint64).reshape(2, 3), np.asarray([1, 2])),
        ]
        segment, manifest = shm.pack_batches(batches)
        assert segment is not None
        try:
            attached, rebuilt = shm.attach_batches(segment.name, manifest)
            try:
                assert len(rebuilt) == len(batches)
                np.testing.assert_array_equal(rebuilt[0], batches[0])
                np.testing.assert_array_equal(rebuilt[1], batches[1])
                np.testing.assert_array_equal(rebuilt[2][0], batches[2][0])
                np.testing.assert_array_equal(rebuilt[2][1], batches[2][1])
                assert rebuilt[2][0].dtype == np.uint64
            finally:
                del rebuilt
                shm.release(attached, unlink=False)
        finally:
            shm.release(segment, unlink=True)

    def test_rebuilt_arrays_are_views_not_copies(self):
        segment, manifest = shm.pack_batches([np.arange(32, dtype=np.int64)])
        try:
            attached, rebuilt = shm.attach_batches(segment.name, manifest)
            try:
                view = rebuilt[0]
                assert not view.flags.owndata  # zero-copy: backed by the map
            finally:
                del rebuilt, view
                shm.release(attached, unlink=False)
        finally:
            shm.release(segment, unlink=True)

    def test_manifest_ships_no_arrays_and_aligned_offsets(self):
        segment, manifest = shm.pack_batches(
            [np.arange(3), (np.arange(5), np.arange(9))]
        )
        try:
            assert not _has_ndarray(manifest)
            offsets = []

            def walk(node):
                if node[0] == "array":
                    offsets.append(node[1])
                elif node[0] == "tuple":
                    for child in node[1]:
                        walk(child)

            for node in manifest:
                walk(node)
            assert offsets and all(o % shm.ALIGNMENT == 0 for o in offsets)
        finally:
            shm.release(segment, unlink=True)

    def test_non_array_batches_pickle_inline(self):
        batches = [[1, 2, 3], {"key": "value"}]
        segment, manifest = shm.pack_batches(batches)
        assert segment is None  # no arrays: the manifest is self-contained
        attached, rebuilt = shm.attach_batches(None, manifest)
        assert attached is None
        assert rebuilt == batches

    def test_non_contiguous_input_round_trips(self):
        strided = np.arange(20)[::2]
        segment, manifest = shm.pack_batches([strided])
        try:
            attached, rebuilt = shm.attach_batches(segment.name, manifest)
            try:
                np.testing.assert_array_equal(rebuilt[0], strided)
            finally:
                del rebuilt
                shm.release(attached, unlink=False)
        finally:
            shm.release(segment, unlink=True)

    def test_manifest_nbytes(self):
        assert shm.manifest_nbytes(None) == 0
        segment, _manifest = shm.pack_batches([np.arange(100, dtype=np.int64)])
        try:
            assert shm.manifest_nbytes(segment) >= 800
        finally:
            shm.release(segment, unlink=True)

    def test_release_tolerates_double_unlink(self):
        segment, _ = shm.pack_batches([np.arange(4)])
        shm.release(segment, unlink=True)
        shm.release(segment, unlink=True)  # FileNotFoundError swallowed


class TestTransportResolution:
    def test_auto_prefers_shm_where_supported(self):
        if not shm.shm_supported():
            pytest.skip("host has no usable shared memory")
        assert resolve_transport(None) == "shm"
        assert resolve_transport("auto") == "shm"

    def test_explicit_names_pass_through(self):
        assert resolve_transport("pickle") == "pickle"

    def test_unknown_transport_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_transport("carrier-pigeon")

    def test_auto_degrades_without_shm_support(self, monkeypatch):
        monkeypatch.setattr(shm, "_SUPPORTED", False)
        assert resolve_transport("auto") == "pickle"
        with pytest.raises(ConfigurationError):
            resolve_transport("shm")

    def test_thread_executor_accepts_no_transport(self):
        mech = GeneralizedRandomResponse(1.0, 4, rng=0)
        with pytest.raises(ConfigurationError):
            ShardedAggregator(mech.accumulator, n_shards=1, transport="shm")
        with ShardedAggregator(mech.accumulator, n_shards=1) as aggregator:
            assert aggregator.transport is None


def _report_batches(rng, n_batches=6, size=1500, d=16):
    mech = GeneralizedRandomResponse(1.0, d, rng=rng)
    batches = [
        mech.privatize_many(rng.integers(0, d, size)) for _ in range(n_batches)
    ]
    return batches, mech


@pytest.mark.skipif(not shm.shm_supported(), reason="no usable shared memory")
class TestShmAggregation:
    def test_counts_exact_across_transports_and_executors(self):
        batches, mech = _report_batches(np.random.default_rng(0))
        supports = {}
        configs = [
            ("thread", None),
            ("process", "pickle"),
            ("process", "shm"),
        ]
        for executor, transport in configs:
            with ShardedAggregator(
                mech.accumulator,
                n_shards=3,
                executor=executor,
                transport=transport,
            ) as aggregator:
                total = aggregator.ingest(batches)
                merged = aggregator.merged()
            assert total == sum(len(batch) for batch in batches)
            assert merged.n == total
            supports[(executor, transport)] = merged.support()
        reference = supports[("thread", None)]
        np.testing.assert_array_equal(reference, supports[("process", "pickle")])
        np.testing.assert_array_equal(reference, supports[("process", "shm")])

    def test_sessions_tuple_batches_over_shm(self):
        rng = np.random.default_rng(1)
        labels = rng.integers(0, 3, 12_000)
        items = rng.integers(0, 16, 12_000)
        sessions = [
            make_session("pts", epsilon=2.0, n_classes=3, n_items=16, rng=child)
            for child in spawn(rng, 2)
        ]
        with ShardedAggregator(
            sessions, executor="process", transport="shm"
        ) as aggregator:
            for start in range(0, 12_000, 3_000):
                aggregator.submit(
                    (labels[start : start + 3_000], items[start : start + 3_000])
                )
            merged = aggregator.merged()
        assert merged.n_ingested == 12_000
        assert merged.estimate().shape == (3, 16)

    def test_no_leaked_segments_after_drains(self, tmp_path):
        import glob

        before = set(glob.glob("/dev/shm/*"))
        batches, mech = _report_batches(np.random.default_rng(2), n_batches=4)
        with ShardedAggregator(
            mech.accumulator, n_shards=2, executor="process", transport="shm"
        ) as aggregator:
            aggregator.ingest(batches)
            aggregator.ingest(batches)
        after = set(glob.glob("/dev/shm/*"))
        assert after - before == set()

    def test_failed_drain_is_all_or_nothing(self):
        mech = GeneralizedRandomResponse(1.0, 4, rng=np.random.default_rng(3))
        good = mech.privatize_many(np.asarray([0, 1, 2, 3]))
        with ShardedAggregator(
            mech.accumulator, n_shards=1, executor="process", transport="shm"
        ) as aggregator:
            assert aggregator.ingest([good]) == 4
            aggregator.submit(np.asarray([99]))  # outside the domain
            with pytest.raises(Exception):
                aggregator.drain()
            merged = aggregator.merged()
        assert merged.n == 4  # the failed drain left the shard untouched

    def test_snapshots_are_detached_from_live_workers(self):
        batches, mech = _report_batches(np.random.default_rng(4), n_batches=2)
        with ShardedAggregator(
            mech.accumulator, n_shards=2, executor="process", transport="shm"
        ) as aggregator:
            aggregator.ingest(batches[:1])
            frozen = aggregator.merged()
            frozen_n = frozen.n
            aggregator.ingest(batches[1:])
            assert frozen.n == frozen_n  # snapshot frozen mid-stream
            assert aggregator.merged().n == sum(len(b) for b in batches)

    def test_transport_bytes_counted_when_telemetry_enabled(self):
        batches, mech = _report_batches(np.random.default_rng(5), n_batches=2)
        with obs_metrics.enabled():
            with ShardedAggregator(
                mech.accumulator, n_shards=1, executor="process", transport="shm"
            ) as aggregator:
                aggregator.ingest(batches)
                snapshot = obs_metrics.get_registry().snapshot()
        key = 'shard_transport_bytes_total{transport="shm"}'
        assert snapshot["counters"].get(key, 0) > 0


@pytest.mark.skipif(not shm.shm_supported(), reason="no usable shared memory")
class TestPickleTransportParity:
    def test_pickle_transport_still_supported(self):
        batches, mech = _report_batches(np.random.default_rng(6), n_batches=3)
        with ShardedAggregator(
            mech.accumulator, n_shards=2, executor="process", transport="pickle"
        ) as aggregator:
            assert aggregator.transport == "pickle"
            total = aggregator.ingest(batches)
        assert total == sum(len(batch) for batch in batches)
