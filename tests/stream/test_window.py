"""Sliding-window policy and drift detection for time-varying streams."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.stream import DriftDetector, WindowPolicy
from repro.stream.window import PERIODS_PER_WINDOW


class TestWindowPolicy:
    def test_knobs_reproduce_the_target_window(self):
        policy = WindowPolicy.from_window(8000)
        decay, every = policy.knobs()
        assert every == 8000 // PERIODS_PER_WINDOW
        assert decay == pytest.approx(1.0 - every / 8000)
        # The steady-state retained mass is the window, by construction.
        assert policy.effective_size() == pytest.approx(8000)

    def test_explicit_period_overrides_default(self):
        policy = WindowPolicy.from_window(1000, decay_every=100)
        assert policy.decay_every == 100
        assert policy.decay == pytest.approx(0.9)

    def test_tiny_windows_keep_a_valid_period(self):
        # window // 8 would be 0 for windows below 8; the default clamps.
        policy = WindowPolicy.from_window(5)
        assert policy.decay_every == 1
        assert 0.0 < policy.decay < 1.0

    def test_simulated_mass_tracks_the_window(self):
        """Iterating the geometric schedule on a counter converges to a
        mass oscillating in (window - decay_every, window]."""
        policy = WindowPolicy.from_window(4000)
        decay, every = policy.knobs()
        mass = 0.0
        for _ in range(200):
            mass = (mass + every) * decay
        assert policy.window - every <= mass + every <= policy.window + 1

    @pytest.mark.parametrize(
        "window,every", [(1, None), (0, None), (100, 0), (100, 100), (100, -3)]
    )
    def test_invalid_configs_rejected(self, window, every):
        with pytest.raises(ConfigurationError):
            WindowPolicy.from_window(window, decay_every=every)


class TestDriftDetector:
    def test_first_update_installs_baseline(self):
        detector = DriftDetector()
        report = detector.update(np.zeros((2, 4)), np.ones((2, 4)))
        assert report.score == 0.0
        assert not report.drifted
        assert detector.has_baseline

    def test_noise_scale_movement_not_flagged(self):
        detector = DriftDetector(threshold=4.0)
        rng = np.random.default_rng(0)
        base = np.full((3, 8), 100.0)
        detector.update(base, np.full((3, 8), 25.0))
        for _ in range(10):
            wiggle = base + rng.normal(0.0, 5.0, size=base.shape)
            report = detector.update(wiggle, np.full((3, 8), 25.0))
            assert not report.drifted, report

    def test_genuine_shift_flagged_with_cell_coordinates(self):
        detector = DriftDetector(threshold=4.0)
        base = np.full((3, 8), 100.0)
        var = np.full((3, 8), 25.0)
        detector.update(base, var)
        shifted = base.copy()
        shifted[1, 5] += 60.0  # 60 / sqrt(50) ~ 8.5 sigma
        report = detector.update(shifted, var)
        assert report.drifted
        assert report.score == pytest.approx(60.0 / np.sqrt(50.0))
        assert report.flagged == [(1, 5)]
        assert detector.n_drift_events == 1

    def test_rebaseline_on_drift_measures_further_movement(self):
        detector = DriftDetector(threshold=4.0)
        var = np.full((2, 2), 1.0)
        detector.update(np.zeros((2, 2)), var)
        shifted = np.full((2, 2), 50.0)
        assert detector.update(shifted, var).drifted
        # The shifted regime became the baseline: staying there is quiet.
        follow_up = detector.update(shifted, var)
        assert not follow_up.drifted
        assert follow_up.score == 0.0

    def test_rebaseline_opt_out_keeps_original_baseline(self):
        detector = DriftDetector(threshold=4.0)
        var = np.full((2, 2), 1.0)
        detector.update(np.zeros((2, 2)), var)
        shifted = np.full((2, 2), 50.0)
        detector.update(shifted, var, rebaseline_on_drift=False)
        again = detector.update(shifted, var)
        assert again.drifted  # still measured against the original zero

    def test_flag_cap_keeps_worst_cells_first(self):
        detector = DriftDetector(threshold=1.0, max_flagged=2)
        var = np.ones((1, 4))
        detector.update(np.zeros((1, 4)), var)
        report = detector.update(np.array([[3.0, 9.0, 6.0, 0.0]]), var)
        assert report.n_flagged == 3  # three cells over the bar...
        assert report.flagged == [(0, 1), (0, 2)]  # ...worst two carried

    def test_per_check_threshold_override(self):
        detector = DriftDetector(threshold=100.0)
        var = np.ones((1, 2))
        detector.update(np.zeros((1, 2)), var)
        report = detector.update(np.array([[10.0, 0.0]]), var, threshold=2.0)
        assert report.drifted and report.threshold == 2.0

    def test_shape_mismatch_and_bad_threshold_rejected(self):
        detector = DriftDetector()
        detector.update(np.zeros((2, 2)), np.ones((2, 2)))
        with pytest.raises(ConfigurationError):
            detector.update(np.zeros((3, 3)), np.ones((3, 3)))
        with pytest.raises(ConfigurationError):
            detector.update(np.zeros((2, 2)), np.ones((2, 2)), threshold=0.0)
        with pytest.raises(ConfigurationError):
            DriftDetector(threshold=-1.0)

    def test_reset_forgets_the_baseline(self):
        detector = DriftDetector()
        detector.update(np.zeros((2, 2)), np.ones((2, 2)))
        detector.reset()
        assert not detector.has_baseline
        report = detector.update(np.full((2, 2), 99.0), np.ones((2, 2)))
        assert not report.drifted  # fresh baseline, no comparison
