"""ShardedAggregator process executor: picklable shard states round-trip
through a process pool and produce the same counts as the thread path."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.mechanisms import GeneralizedRandomResponse
from repro.rng import spawn
from repro.stream import ShardedAggregator, make_session


def _report_batches(rng, n_batches=6, size=2000, d=16):
    mech = GeneralizedRandomResponse(1.0, d, rng=rng)
    return [mech.privatize_many(rng.integers(0, d, size)) for _ in range(n_batches)], mech


class TestProcessExecutor:
    def test_rejects_unknown_executor(self):
        with pytest.raises(ConfigurationError):
            ShardedAggregator([object()], executor="fiber")

    def test_accumulator_counts_match_thread_executor_exactly(self):
        batches, mech = _report_batches(np.random.default_rng(0))
        supports = {}
        for executor in ("thread", "process"):
            with ShardedAggregator(
                mech.accumulator, n_shards=3, executor=executor
            ) as aggregator:
                futures = [aggregator.submit(batch) for batch in batches]
                total = aggregator.drain()
                merged = aggregator.merged()
            assert total == sum(len(b) for b in batches)
            assert all(future.result() == len(b) for future, b in zip(futures, batches))
            supports[executor] = merged.support()
            assert merged.n == total
        np.testing.assert_array_equal(supports["thread"], supports["process"])

    def test_sessions_ingest_and_estimate_through_the_pool(self):
        rng = np.random.default_rng(1)
        labels = rng.integers(0, 3, 24_000)
        items = rng.integers(0, 16, 24_000)
        sessions = [
            make_session("pts", epsilon=2.0, n_classes=3, n_items=16, rng=child)
            for child in spawn(rng, 2)
        ]
        with ShardedAggregator(sessions, executor="process") as aggregator:
            for start in range(0, 24_000, 4_000):
                aggregator.submit(
                    (labels[start : start + 4_000], items[start : start + 4_000])
                )
            merged = aggregator.merged()
        assert merged.n_ingested == 24_000
        assert merged.estimate().shape == (3, 16)

    def test_waiting_on_a_submit_future_triggers_the_drain(self):
        """The thread-mode contract holds: submit(...).result() works
        without an explicit drain()."""
        batches, mech = _report_batches(np.random.default_rng(4), n_batches=3)
        with ShardedAggregator(mech.accumulator, n_shards=2, executor="process") as agg:
            futures = [agg.submit(batch) for batch in batches]
            assert futures[0].result() == len(batches[0])
            assert all(f.result() == len(b) for f, b in zip(futures, batches))
            assert agg.merged().n == sum(len(b) for b in batches)

    def test_close_drains_pending_batches(self):
        batches, mech = _report_batches(np.random.default_rng(2), n_batches=2)
        aggregator = ShardedAggregator(mech.accumulator, n_shards=2, executor="process")
        futures = [aggregator.submit(batch) for batch in batches]
        aggregator.close()
        assert all(future.result() == len(b) for future, b in zip(futures, batches))

    def test_shard_errors_propagate(self):
        mech = GeneralizedRandomResponse(1.0, 4, rng=np.random.default_rng(3))
        with ShardedAggregator(mech.accumulator, n_shards=1, executor="process") as agg:
            agg.submit(np.asarray([99]))  # outside the domain
            with pytest.raises(Exception):
                agg.drain()
