"""Shard-worker telemetry piggyback: worker-process MetricsRegistry
snapshots ship back on drain replies, relabeled per worker, and fold
into the parent's Prometheus rendering."""

import numpy as np

import repro.obs as obs
from repro.obs import merge_snapshots, render_snapshot
from repro.rng import spawn
from repro.stream import ShardedAggregator, make_session


def _sessions(n_shards=2, seed=5):
    rng = np.random.default_rng(seed)
    return [
        make_session("pts", epsilon=2.0, n_classes=3, n_items=16, rng=child)
        for child in spawn(rng, n_shards)
    ]


def _load(aggregator, n=12_000, seed=6):
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, 3, n)
    items = rng.integers(0, 16, n)
    for start in range(0, n, 3_000):
        aggregator.submit(
            (labels[start : start + 3_000], items[start : start + 3_000])
        )
    aggregator.drain()
    return n


class TestWorkerMetricsPiggyback:
    def test_worker_counters_appear_in_parent_prometheus_output(self):
        """Acceptance: ingest counters minted inside shard worker
        *processes* surface in the parent's merged /metrics rendering,
        one relabeled series per worker."""
        with obs.enabled() as registry:
            with ShardedAggregator(
                _sessions(), executor="process"
            ) as aggregator:
                n = _load(aggregator)
                snapshots = aggregator.worker_metrics()

            assert len(snapshots) == 2
            counters = {}
            for snapshot in snapshots:
                counters.update(snapshot.get("counters", {}))
            ingested = {
                key: value
                for key, value in counters.items()
                if key.startswith("stream_ingested_total")
            }
            # every series is attributed to its worker, none collide
            assert ingested
            workers = {key.split('worker="')[1].split('"')[0] for key in ingested}
            assert workers == {"shard0", "shard1"}
            assert sum(ingested.values()) == n

            rendered = render_snapshot(
                merge_snapshots([registry.snapshot(), *snapshots])
            )
        assert 'worker="shard0"' in rendered
        assert 'worker="shard1"' in rendered
        assert "stream_ingested_total" in rendered

    def test_no_telemetry_shipped_while_registry_disabled(self):
        """With the parent registry off (the default), drain replies stay
        in the legacy sizes-only shape and nothing is collected."""
        assert not obs.get_registry().enabled
        with ShardedAggregator(_sessions(), executor="process") as aggregator:
            _load(aggregator)
            assert aggregator.worker_metrics() == []

    def test_thread_executor_reports_no_worker_snapshots(self):
        """Thread shards share the parent registry: their counts are
        already in the parent snapshot, so no piggyback duplicates them."""
        with obs.enabled():
            with ShardedAggregator(
                _sessions(), executor="thread"
            ) as aggregator:
                _load(aggregator)
                assert aggregator.worker_metrics() == []

    def test_repeated_drains_replace_not_accumulate(self):
        """A later drain replaces each worker's snapshot (cumulative
        counters would double-count if merged additively)."""
        with obs.enabled():
            with ShardedAggregator(
                _sessions(), executor="process"
            ) as aggregator:
                first_n = _load(aggregator, n=6_000, seed=7)
                second_n = _load(aggregator, n=6_000, seed=8)
                snapshots = aggregator.worker_metrics()
            totals = sum(
                value
                for snapshot in snapshots
                for key, value in snapshot.get("counters", {}).items()
                if key.startswith("stream_ingested_total")
            )
            assert totals == first_n + second_n
