"""ShardedAggregator: fan-out, merge reduction, error propagation."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.mechanisms import GeneralizedRandomResponse, OptimalLocalHashing
from repro.stream import CountAccumulator, ShardedAggregator, make_session


def _report_batches(rng, batches=6, size=50, domain=5):
    return [rng.integers(0, domain, size) for _ in range(batches)]


class TestFanOut:
    def test_sharded_equals_single_accumulator(self, rng):
        """Protocol reports aggregate to identical counts however sharded."""
        mech = GeneralizedRandomResponse(1.0, 5, rng=rng)
        batches = [mech.privatize_many(b) for b in _report_batches(rng)]
        single = mech.accumulator()
        for batch in batches:
            single.ingest_batch(batch)
        for n_shards in (1, 2, 4):
            with ShardedAggregator(mech.accumulator, n_shards=n_shards) as agg:
                total = agg.ingest(iter(batches))
                merged = agg.merged()
            assert total == sum(len(b) for b in batches)
            np.testing.assert_array_equal(merged.support(), single.support())

    def test_tuple_batches_reach_sessions(self, rng):
        shards = [
            make_session("ptj", epsilon=1.0, n_classes=2, n_items=4,
                         rng=np.random.default_rng(seed))
            for seed in (1, 2)
        ]
        with ShardedAggregator(shards) as agg:
            agg.submit((np.asarray([0, 1, 0]), np.asarray([1, 2, 3])))
            agg.submit((np.asarray([1, 1]), np.asarray([0, 0])))
            merged = agg.merged()
        assert merged.n_ingested == 5
        assert merged.estimate().shape == (2, 4)

    def test_tuple_batches_reach_accumulators(self, rng):
        """An accumulator's own tuple batch form survives the fan-out
        (OLH's (a, b, r) columns must not be splatted apart)."""
        mech = OptimalLocalHashing(1.0, 9, rng=rng)
        reports = np.asarray([mech.privatize(int(v)) for v in rng.integers(0, 9, 40)])
        single = mech.accumulator()
        single.ingest_batch(reports)
        with ShardedAggregator(mech.accumulator, n_shards=2) as agg:
            agg.submit((reports[:20, 0], reports[:20, 1], reports[:20, 2]))
            agg.submit(reports[20:])
            merged = agg.merged()
        assert merged.n == single.n
        np.testing.assert_array_equal(merged.support(), single.support())

    def test_pinned_shard(self, rng):
        with ShardedAggregator(lambda: CountAccumulator(4), n_shards=3) as agg:
            agg.submit(np.asarray([0, 1]), shard=2)
            agg.drain()
            parts = agg.partials()
        assert parts[2].n == 2
        assert parts[0].n == parts[1].n == 0

    def test_single_shard_merged_is_a_snapshot(self, rng):
        """merged() must detach from the live shard even with one shard,
        so a mid-stream snapshot stays frozen while ingestion continues."""
        with ShardedAggregator(lambda: CountAccumulator(4), n_shards=1) as agg:
            agg.submit(np.asarray([0, 1]))
            snapshot = agg.merged()
            assert snapshot.n == 2
            agg.submit(np.asarray([2, 3, 3]))
            agg.drain()
        assert snapshot.n == 2
        np.testing.assert_array_equal(snapshot.support(), [1, 1, 0, 0])

    def test_single_shard_session_merged_is_a_snapshot(self):
        shards = [
            make_session("ptj", epsilon=1.0, n_classes=2, n_items=4,
                         rng=np.random.default_rng(1))
        ]
        with ShardedAggregator(shards) as agg:
            agg.submit((np.asarray([0, 1]), np.asarray([0, 1])))
            snapshot = agg.merged()
            agg.submit((np.asarray([1]), np.asarray([2])))
            agg.drain()
        assert snapshot.n_ingested == 2

    def test_partials_drain_first(self, rng):
        with ShardedAggregator(lambda: CountAccumulator(4), n_shards=2) as agg:
            for _ in range(4):
                agg.submit(np.asarray([1, 2, 3]))
            parts = agg.partials()
        assert sum(p.n for p in parts) == 12


class TestLifecycle:
    def test_submit_after_close_rejected(self):
        agg = ShardedAggregator(lambda: CountAccumulator(4), n_shards=1)
        agg.close()
        with pytest.raises(ConfigurationError):
            agg.submit(np.asarray([0]))

    def test_shard_errors_surface_at_drain(self):
        with ShardedAggregator(lambda: CountAccumulator(4), n_shards=2) as agg:
            agg.submit(np.asarray([0, 99]))  # outside the domain
            with pytest.raises(Exception):
                agg.drain()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ShardedAggregator([])
        with pytest.raises(ConfigurationError):
            ShardedAggregator(lambda: CountAccumulator(4), n_shards=0)
        with pytest.raises(ConfigurationError):
            ShardedAggregator([CountAccumulator(4)], n_shards=2)
        with pytest.raises(ConfigurationError):
            with ShardedAggregator([CountAccumulator(4)]) as agg:
                agg.submit(np.asarray([0]), shard=5)
