"""Accumulator laws: batch/one-shot equivalence, merge algebra, state."""

import numpy as np
import pytest

from repro.exceptions import AggregationError, ConfigurationError
from repro.mechanisms import (
    AdaptiveMechanism,
    CorrelatedPerturbation,
    GeneralizedRandomResponse,
    HadamardResponse,
    OptimalLocalHashing,
    OptimizedUnaryEncoding,
    Rappor,
    SymmetricUnaryEncoding,
    ValidityPerturbation,
)
from repro.stream import (
    BitVectorAccumulator,
    CorrelatedAccumulator,
    CountAccumulator,
    FlagFilteredAccumulator,
    HadamardAccumulator,
    LocalHashAccumulator,
    SupportAccumulator,
    accumulator_for,
)

D = 7


def _mechanisms(rng):
    return [
        GeneralizedRandomResponse(1.0, D, rng=rng),
        OptimizedUnaryEncoding(1.0, D, rng=rng),
        SymmetricUnaryEncoding(1.0, D, rng=rng),
        OptimalLocalHashing(1.0, D, rng=rng),
        HadamardResponse(1.0, D, rng=rng),
        ValidityPerturbation(1.0, D, rng=rng),
        Rappor(1.0, D, rng=rng),
        AdaptiveMechanism(1.0, D, rng=rng),
    ]


def _reports(mech, rng, count=60):
    return [mech.privatize(int(v)) for v in rng.integers(0, D, count)]


class TestBatchOneShotEquivalence:
    """ingest_batch over any split == the mechanism's one-shot aggregate."""

    @pytest.mark.parametrize("index", range(8))
    def test_split_ingest_matches_aggregate(self, index, rng):
        mech = _mechanisms(rng)[index]
        reports = _reports(mech, rng)
        acc = mech.accumulator()
        acc.ingest_batch(reports[:17])
        acc.ingest_batch(reports[17:40])
        acc.ingest_batch(reports[40:])
        assert acc.n == len(reports)
        np.testing.assert_array_equal(acc.support(), mech.aggregate(reports))

    @pytest.mark.parametrize("index", range(8))
    def test_single_ingest_matches_batch(self, index, rng):
        mech = _mechanisms(rng)[index]
        reports = _reports(mech, rng, count=20)
        one_by_one = mech.accumulator()
        for report in reports:
            one_by_one.ingest(report)
        batched = mech.accumulator()
        batched.ingest_batch(reports)
        np.testing.assert_array_equal(one_by_one.support(), batched.support())

    def test_correlated_matches_aggregate(self, rng):
        cp = CorrelatedPerturbation(0.5, 0.5, n_classes=3, n_items=5, rng=rng)
        pairs = list(zip(rng.integers(0, 3, 80), rng.integers(0, 5, 80)))
        reports = [cp.privatize(int(l), int(i)) for l, i in pairs]
        acc = cp.accumulator()
        acc.ingest_batch(reports[:33])
        acc.ingest_batch(reports[33:])
        reference = cp.aggregate(reports)
        state = acc.as_correlated_support()
        np.testing.assert_array_equal(state.item_support, reference.item_support)
        np.testing.assert_array_equal(state.flag_support, reference.flag_support)
        np.testing.assert_array_equal(state.label_counts, reference.label_counts)
        assert state.n_users == reference.n_users

    def test_correlated_array_form(self, rng):
        """A (labels, bits-matrix) tuple batch equals the list-of-pairs form."""
        cp = CorrelatedPerturbation(0.5, 0.5, n_classes=3, n_items=5, rng=rng)
        reports = [cp.privatize(int(l), int(i))
                   for l, i in zip(rng.integers(0, 3, 40), rng.integers(0, 5, 40))]
        as_list = cp.accumulator()
        as_list.ingest_batch(reports)
        as_arrays = cp.accumulator()
        labels = np.asarray([label for label, _ in reports])
        bits = np.stack([bits for _, bits in reports])
        as_arrays.ingest_batch((labels, bits))
        np.testing.assert_array_equal(as_list.support(), as_arrays.support())

    def test_olh_column_form(self, rng):
        mech = OptimalLocalHashing(1.0, D, rng=rng)
        reports = _reports(mech, rng, count=30)
        as_list = mech.accumulator()
        as_list.ingest_batch(reports)
        arr = np.asarray(reports, dtype=np.int64)
        as_columns = mech.accumulator()
        as_columns.ingest_batch((arr[:, 0], arr[:, 1], arr[:, 2]))
        np.testing.assert_array_equal(as_list.support(), as_columns.support())

    def test_olh_tuple_of_three_triples_is_rows(self, rng):
        """A tuple holding exactly three report triples must be parsed as
        rows, not mistaken for the (a, b, r) column form."""
        mech = OptimalLocalHashing(1.0, D, rng=rng)
        reports = tuple(_reports(mech, rng, count=3))
        as_tuple = mech.accumulator()
        as_tuple.ingest_batch(reports)
        as_list = mech.accumulator()
        as_list.ingest_batch(list(reports))
        assert as_tuple.n == 3
        np.testing.assert_array_equal(as_tuple.support(), as_list.support())


class TestMergeAlgebra:
    @pytest.mark.parametrize("index", range(8))
    def test_merge_is_associative_and_commutative(self, index, rng):
        mech = _mechanisms(rng)[index]
        reports = _reports(mech, rng, count=45)
        parts = [mech.accumulator() for _ in range(3)]
        parts[0].ingest_batch(reports[:15])
        parts[1].ingest_batch(reports[15:30])
        parts[2].ingest_batch(reports[30:])
        left = parts[0].merge(parts[1]).merge(parts[2])
        right = parts[0].merge(parts[1].merge(parts[2]))
        swapped = parts[2].merge(parts[0]).merge(parts[1])
        whole = mech.accumulator()
        whole.ingest_batch(reports)
        for candidate in (left, right, swapped):
            np.testing.assert_array_equal(candidate.support(), whole.support())
            assert candidate.n == whole.n

    def test_merge_with_empty_is_identity(self, rng):
        mech = GeneralizedRandomResponse(1.0, D, rng=rng)
        acc = mech.accumulator()
        acc.ingest_batch(_reports(mech, rng, count=25))
        merged = acc.merge(mech.accumulator())
        np.testing.assert_array_equal(merged.support(), acc.support())
        assert merged.n == acc.n

    def test_merge_leaves_operands_untouched(self, rng):
        mech = GeneralizedRandomResponse(1.0, D, rng=rng)
        a, b = mech.accumulator(), mech.accumulator()
        a.ingest_batch(_reports(mech, rng, count=10))
        b.ingest_batch(_reports(mech, rng, count=10))
        before_a, before_b = a.support(), b.support()
        a.merge(b)
        np.testing.assert_array_equal(a.support(), before_a)
        np.testing.assert_array_equal(b.support(), before_b)

    def test_incompatible_merge_rejected(self):
        with pytest.raises(AggregationError):
            CountAccumulator(4).merge(CountAccumulator(5))
        with pytest.raises(AggregationError):
            CountAccumulator(4).merge(BitVectorAccumulator(4))
        with pytest.raises(AggregationError):
            LocalHashAccumulator(4, g=3).merge(LocalHashAccumulator(4, g=4))


class TestStateRoundTrip:
    @pytest.mark.parametrize("index", range(8))
    def test_state_dict_round_trip(self, index, rng):
        mech = _mechanisms(rng)[index]
        acc = mech.accumulator()
        acc.ingest_batch(_reports(mech, rng, count=30))
        restored = SupportAccumulator.from_state(acc.state_dict())
        assert type(restored) is type(acc)
        np.testing.assert_array_equal(restored.support(), acc.support())
        assert restored.n == acc.n

    def test_npz_round_trip(self, rng, tmp_path):
        mech = ValidityPerturbation(1.0, D, rng=rng)
        acc = mech.accumulator()
        acc.ingest_batch(_reports(mech, rng, count=30))
        path = tmp_path / "vp-state"
        acc.save(path)
        restored = SupportAccumulator.load(path)
        np.testing.assert_array_equal(restored.support(), acc.support())
        assert restored.n == acc.n
        # Ingestion continues identically after restore.
        more = _reports(mech, rng, count=10)
        acc.ingest_batch(more)
        restored.ingest_batch(more)
        np.testing.assert_array_equal(restored.support(), acc.support())

    def test_correlated_round_trip(self, rng, tmp_path):
        cp = CorrelatedPerturbation(0.5, 0.5, n_classes=3, n_items=5, rng=rng)
        acc = cp.accumulator()
        acc.ingest_batch(
            [cp.privatize(int(l), int(i))
             for l, i in zip(rng.integers(0, 3, 30), rng.integers(0, 5, 30))]
        )
        path = tmp_path / "cp-state"
        acc.save(path)
        restored = SupportAccumulator.load(path)
        assert isinstance(restored, CorrelatedAccumulator)
        state, reference = restored.as_correlated_support(), acc.as_correlated_support()
        np.testing.assert_array_equal(state.item_support, reference.item_support)
        np.testing.assert_array_equal(state.label_counts, reference.label_counts)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            SupportAccumulator.from_state({"kind": "nope", "n": 0})

    def test_kind_mismatch_rejected(self, rng):
        acc = CountAccumulator(4)
        with pytest.raises(ConfigurationError):
            BitVectorAccumulator.from_state(acc.state_dict())


class TestValidation:
    def test_count_rejects_foreign_domain(self):
        acc = CountAccumulator(4)
        with pytest.raises(AggregationError):
            acc.ingest_batch([0, 4])

    def test_bits_reject_wrong_width(self):
        acc = BitVectorAccumulator(4)
        with pytest.raises(AggregationError):
            acc.ingest_batch(np.zeros((2, 5), dtype=np.uint8))

    def test_hadamard_rejects_bad_sign(self):
        acc = HadamardAccumulator(4, K=8)
        with pytest.raises(AggregationError):
            acc.ingest_batch([(0, 2)])
        with pytest.raises(AggregationError):
            acc.ingest_batch([(8, 1)])

    def test_olh_rejects_bad_report(self):
        acc = LocalHashAccumulator(4, g=3)
        with pytest.raises(AggregationError):
            acc.ingest_batch([(1, 2, 3)])

    def test_flag_filtered_matches_flag_semantics(self):
        acc = FlagFilteredAccumulator(3)
        acc.ingest_batch(
            np.asarray([[1, 0, 1, 0], [1, 1, 1, 1]], dtype=np.uint8)
        )
        # Second report raises the flag: its item bits must not count.
        np.testing.assert_array_equal(acc.support(), [1, 0, 1, 1])

    def test_empty_batch_is_noop(self):
        acc = CountAccumulator(4)
        assert acc.ingest_batch([]) == 0
        assert acc.n == 0

    def test_factory_rejects_unknown_mechanism(self):
        with pytest.raises(ConfigurationError):
            accumulator_for(object())


class TestFactory:
    def test_adaptive_unwraps_to_inner(self, rng):
        small = AdaptiveMechanism(1.0, 4, rng=rng)
        large = AdaptiveMechanism(1.0, 4096, rng=rng)
        assert isinstance(accumulator_for(small), CountAccumulator)
        assert isinstance(accumulator_for(large), BitVectorAccumulator)

    def test_rappor_width_is_bloom_bits(self, rng):
        mech = Rappor(1.0, D, rng=rng)
        acc = accumulator_for(mech)
        assert isinstance(acc, BitVectorAccumulator)
        assert acc.width == mech.n_bits
