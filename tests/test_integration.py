"""Cross-module integration tests: the two paper queries end to end."""

import numpy as np
import pytest

from repro import LabelItemDataset, estimate_frequencies, mine_topk
from repro.datasets import syn1, zipf_multiclass
from repro.metrics import average_over_classes, rmse


class TestFrequencyQuery:
    def test_all_frameworks_on_syn1(self, rng):
        data = syn1(scale=0.001, rng=rng)
        for framework in ("hec", "ptj", "pts", "pts-cp"):
            estimate = estimate_frequencies(
                data, framework=framework, epsilon=2.0, rng=rng
            )
            assert estimate.shape == (4, 4)
            assert np.isfinite(estimate).all()

    def test_error_shrinks_with_budget(self, small_dataset):
        """More budget, less error — the universal Fig. 6 trend."""
        errors = []
        for eps in (0.5, 2.0, 8.0):
            trial_errors = [
                rmse(
                    estimate_frequencies(
                        small_dataset, framework="pts-cp", epsilon=eps,
                        rng=np.random.default_rng(100 + t),
                    ),
                    small_dataset.pair_counts(),
                )
                for t in range(10)
            ]
            errors.append(np.mean(trial_errors))
        assert errors[0] > errors[1] > errors[2]

    def test_protocol_mode_via_query(self, rng):
        counts = rng.multinomial(600, np.ones(6) / 6).reshape(2, 3)
        data = LabelItemDataset.from_pair_counts(counts, rng=rng)
        estimate = estimate_frequencies(
            data, framework="pts-cp", epsilon=2.0, mode="protocol", rng=rng
        )
        assert estimate.shape == (2, 3)

    def test_label_fraction_forwarded(self, small_dataset, rng):
        estimate = estimate_frequencies(
            small_dataset, framework="pts", epsilon=2.0, label_fraction=0.3, rng=rng
        )
        assert estimate.shape == (3, 8)


class TestTopkQuery:
    @pytest.fixture
    def workload(self, rng):
        return zipf_multiclass(
            n_users=150_000, n_classes=3, n_items=512, zipf_s=1.4,
            shared_head=6, rng=rng,
        )

    def test_optimized_pipeline(self, workload, rng):
        mined = mine_topk(workload, k=10, framework="pts", epsilon=6.0, rng=rng)
        truth = workload.true_topk(10)
        assert set(mined) == {0, 1, 2}
        assert average_over_classes(mined, truth, "f1") > 0.4

    def test_baseline_pipeline(self, workload, rng):
        mined = mine_topk(
            workload, k=10, framework="ptj", epsilon=6.0, optimized=False, rng=rng
        )
        assert set(mined) == {0, 1, 2}

    def test_scheme_options_forwarded(self, workload, rng):
        mined = mine_topk(
            workload, k=5, framework="pts", epsilon=6.0, rng=rng, a=0.3, b=1.5
        )
        assert set(mined) == {0, 1, 2}

    def test_hec_pipeline(self, workload, rng):
        mined = mine_topk(workload, k=5, framework="hec", epsilon=6.0, rng=rng)
        assert set(mined) == {0, 1, 2}


class TestReproducibility:
    def test_full_pipeline_deterministic(self, rng):
        data = zipf_multiclass(
            n_users=50_000, n_classes=2, n_items=256, rng=np.random.default_rng(1)
        )
        a = mine_topk(data, k=5, framework="pts", epsilon=4.0, rng=np.random.default_rng(2))
        b = mine_topk(data, k=5, framework="pts", epsilon=4.0, rng=np.random.default_rng(2))
        assert a == b

    def test_dataset_generation_deterministic(self):
        a = syn1(scale=0.001, rng=np.random.default_rng(3))
        b = syn1(scale=0.001, rng=np.random.default_rng(3))
        assert (a.pair_counts() == b.pair_counts()).all()
