"""LabelItemDataset container."""

import numpy as np
import pytest

from repro.datasets import LabelItemDataset
from repro.exceptions import DomainError


class TestConstruction:
    def test_basic(self):
        data = LabelItemDataset(
            labels=np.asarray([0, 1, 1]), items=np.asarray([2, 0, 2]),
            n_classes=2, n_items=3,
        )
        assert data.n_users == 3

    def test_rejects_misaligned_arrays(self):
        with pytest.raises(DomainError):
            LabelItemDataset(np.zeros(3), np.zeros(4), 2, 2)

    def test_rejects_out_of_domain(self):
        with pytest.raises(DomainError):
            LabelItemDataset(np.asarray([0, 2]), np.asarray([0, 0]), 2, 2)
        with pytest.raises(DomainError):
            LabelItemDataset(np.asarray([0, 0]), np.asarray([0, 5]), 2, 2)

    def test_from_pairs_dense_ids(self):
        data = LabelItemDataset.from_pairs(
            [("男", "sword"), ("女", "shield"), ("男", "shield")]
        )
        assert data.n_classes == 2
        assert data.n_items == 2
        assert data.n_users == 3

    def test_from_pairs_rejects_empty(self):
        with pytest.raises(DomainError):
            LabelItemDataset.from_pairs([])

    def test_from_pair_counts_roundtrip(self, rng):
        counts = rng.multinomial(500, np.ones(6) / 6).reshape(2, 3)
        data = LabelItemDataset.from_pair_counts(counts, rng=rng)
        assert (data.pair_counts() == counts).all()
        assert data.n_users == 500

    def test_from_pair_counts_rejects_negative(self):
        with pytest.raises(DomainError):
            LabelItemDataset.from_pair_counts(np.asarray([[1, -1]]))


class TestStatistics:
    def test_pair_counts_cached_and_correct(self, small_dataset):
        counts = small_dataset.pair_counts()
        assert counts.shape == (3, 8)
        assert counts.sum() == small_dataset.n_users
        recomputed = np.zeros_like(counts)
        for l, i in zip(small_dataset.labels, small_dataset.items):
            recomputed[l, i] += 1
        assert (counts == recomputed).all()

    def test_marginals(self, small_dataset):
        assert small_dataset.class_counts().sum() == small_dataset.n_users
        assert small_dataset.item_counts().sum() == small_dataset.n_users

    def test_true_topk_ordering(self):
        counts = np.asarray([[10, 30, 20, 30]])
        data = LabelItemDataset.from_pair_counts(counts)
        # Ties break toward the smaller item id.
        assert data.true_topk(3)[0] == [1, 3, 2]

    def test_true_topk_rejects_bad_k(self, small_dataset):
        with pytest.raises(DomainError):
            small_dataset.true_topk(0)


class TestRestructuring:
    def test_shuffled_preserves_counts(self, small_dataset, rng):
        shuffled = small_dataset.shuffled(rng)
        assert (shuffled.pair_counts() == small_dataset.pair_counts()).all()
        assert (shuffled.labels != small_dataset.labels).any()

    def test_split_partitions_users(self, small_dataset, rng):
        parts = small_dataset.split([0.5, 0.3, 0.2], rng)
        assert sum(p.n_users for p in parts) == small_dataset.n_users
        total = sum(p.pair_counts() for p in parts)
        assert (total == small_dataset.pair_counts()).all()

    def test_split_rejects_bad_fractions(self, small_dataset, rng):
        with pytest.raises(DomainError):
            small_dataset.split([0.5, 0.2], rng)

    def test_subset(self, small_dataset):
        sub = small_dataset.subset(np.arange(10))
        assert sub.n_users == 10
        assert sub.n_classes == small_dataset.n_classes
