"""Real-world dataset stand-ins."""

import numpy as np
import pytest

from repro.datasets import (
    ANIME_N_ITEMS,
    JD_CLASS_SIZES,
    JD_N_ITEMS,
    anime_like,
    diabetes_like,
    heart_disease_like,
    jd_like,
)
from repro.exceptions import DomainError


class TestClinicalStudies:
    def test_diabetes_shape(self, rng):
        study = diabetes_like(scale=0.05, rng=rng)
        assert study.n_features == 8
        domains = [d.n_items for d in study]
        assert max(domains) == 600
        assert all(d.n_classes == 2 for d in study)

    def test_diabetes_class_imbalance(self, rng):
        study = diabetes_like(scale=0.05, rng=rng)
        for data in study:
            sizes = data.class_counts()
            positive_rate = sizes[1] / sizes.sum()
            assert 0.06 < positive_rate < 0.11

    def test_heart_shape(self, rng):
        study = heart_disease_like(scale=0.05, rng=rng)
        assert study.n_features == 21
        assert max(d.n_items for d in study) == 84

    def test_class_conditional_shift(self, rng):
        """Positive-class value distributions sit higher — the structure
        multi-class estimation must recover."""
        study = diabetes_like(scale=0.2, rng=rng)
        wide = [d for d in study if d.n_items >= 97][0]
        counts = wide.pair_counts().astype(np.float64)
        values = np.arange(wide.n_items)
        mean_neg = (counts[0] * values).sum() / counts[0].sum()
        mean_pos = (counts[1] * values).sum() / counts[1].sum()
        assert mean_pos > mean_neg

    def test_scale_validation(self, rng):
        with pytest.raises(DomainError):
            diabetes_like(scale=0.0, rng=rng)


class TestAnimeLike:
    def test_shape(self, rng):
        data = anime_like(scale=0.01, rng=rng)
        assert data.n_classes == 2
        assert data.n_items == ANIME_N_ITEMS
        assert data.n_users == pytest.approx(70_000, rel=0.01)

    def test_gender_split(self, rng):
        data = anime_like(scale=0.01, rng=rng)
        sizes = data.class_counts()
        assert sizes[0] / sizes.sum() == pytest.approx(0.55, abs=0.01)

    def test_shared_head(self, rng):
        data = anime_like(scale=0.02, rng=rng)
        topk = data.true_topk(20)
        overlap = len(set(topk[0]) & set(topk[1]))
        assert overlap >= 8  # strong cross-gender hit overlap


class TestJDLike:
    def test_shape(self, rng):
        data = jd_like(scale=0.01, rng=rng)
        assert data.n_classes == 5
        assert data.n_items == JD_N_ITEMS

    def test_unbalanced_class_profile(self, rng):
        data = jd_like(scale=0.01, rng=rng)
        sizes = data.class_counts().astype(np.float64)
        expected = np.asarray(JD_CLASS_SIZES, dtype=np.float64)
        observed_ratio = sizes / sizes.sum()
        expected_ratio = expected / expected.sum()
        assert np.abs(observed_ratio - expected_ratio).max() < 0.02

    def test_scale_validation(self, rng):
        with pytest.raises(DomainError):
            jd_like(scale=-1.0, rng=rng)
