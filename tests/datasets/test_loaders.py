"""CSV pair loading."""

import pytest

from repro.datasets import load_pairs_csv
from repro.exceptions import DomainError


@pytest.fixture
def csv_file(tmp_path):
    path = tmp_path / "pairs.csv"
    path.write_text("gender,item\nf,sword\nm,shield\nf,sword\n")
    return path


class TestLoadPairs:
    def test_by_column_name(self, csv_file):
        data = load_pairs_csv(csv_file, label_column="gender", item_column="item")
        assert data.n_users == 3
        assert data.n_classes == 2
        assert data.n_items == 2

    def test_by_index_with_header_flag(self, csv_file):
        data = load_pairs_csv(csv_file, 0, 1, has_header=True)
        assert data.n_users == 3

    def test_without_header(self, tmp_path):
        path = tmp_path / "raw.csv"
        path.write_text("a,1\nb,2\na,1\n")
        data = load_pairs_csv(path, 0, 1)
        assert data.n_users == 3
        assert data.name == "raw"

    def test_max_rows(self, csv_file):
        data = load_pairs_csv(csv_file, "gender", "item", max_rows=2)
        assert data.n_users == 2

    def test_missing_column_name(self, csv_file):
        with pytest.raises(DomainError):
            load_pairs_csv(csv_file, "nope", "item")

    def test_named_column_without_header(self, tmp_path):
        path = tmp_path / "raw.csv"
        path.write_text("a,1\n")
        with pytest.raises(DomainError):
            load_pairs_csv(path, "gender", 1, has_header=False)

    def test_short_rows(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,1\nb\n")
        with pytest.raises(DomainError):
            load_pairs_csv(path, 0, 1)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(DomainError):
            load_pairs_csv(path, 0, 1)

    def test_custom_delimiter(self, tmp_path):
        path = tmp_path / "tabs.tsv"
        path.write_text("a\t1\nb\t2\n")
        data = load_pairs_csv(path, 0, 1, delimiter="\t")
        assert data.n_users == 2
