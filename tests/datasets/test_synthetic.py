"""Synthetic dataset generators (SYN1-4 and the exponential family)."""

import numpy as np
import pytest

from repro.datasets import (
    SYN1_PAIR_COUNTS,
    SYN2_CLASS_SIZES,
    SYN2_PROBE_COUNT,
    syn1,
    syn2,
    syn3,
    syn4,
    zipf_multiclass,
)
from repro.datasets.synthetic import exponential_multiclass
from repro.exceptions import DomainError


class TestSyn1:
    def test_latin_square_structure(self, rng):
        data = syn1(rng=rng)
        counts = data.pair_counts()
        assert counts.shape == (4, 4)
        # Every class and every item total the same grand sum.
        expected = sum(SYN1_PAIR_COUNTS)
        assert (counts.sum(axis=1) == expected).all()
        assert (counts.sum(axis=0) == expected).all()
        # Each row holds each magnitude exactly once.
        for row in counts:
            assert sorted(row.tolist()) == sorted(SYN1_PAIR_COUNTS)

    def test_scale(self, rng):
        data = syn1(scale=0.01, rng=rng)
        assert data.n_users == pytest.approx(sum(SYN1_PAIR_COUNTS) * 0.01 * 4, rel=0.01)


class TestSyn2:
    def test_probe_item_fixed_across_classes(self, rng):
        data = syn2(scale=0.01, rng=rng)
        counts = data.pair_counts()
        probe = int(round(SYN2_PROBE_COUNT * 0.01))
        assert (counts[:, 0] == probe).all()

    def test_class_sizes_span_regimes(self, rng):
        data = syn2(scale=0.01, rng=rng)
        sizes = data.class_counts()
        expected = np.round(np.asarray(SYN2_CLASS_SIZES) * 0.01)
        assert np.allclose(sizes, expected, rtol=0.01)


class TestSyn3Syn4:
    def test_syn3_has_shared_head(self, rng):
        data = syn3(n_classes=4, n_users=200_000, n_items=2000, rng=rng)
        topk = data.true_topk(20)
        overlaps = [
            len(set(topk[a]) & set(topk[b]))
            for a in range(4)
            for b in range(a + 1, 4)
        ]
        assert np.mean(overlaps) >= 5  # paper: ~8 shared of top 20

    def test_syn4_heads_disjoint(self, rng):
        data = syn4(n_classes=4, n_users=200_000, n_items=2000, rng=rng)
        topk = data.true_topk(20)
        overlaps = [
            len(set(topk[a]) & set(topk[b]))
            for a in range(4)
            for b in range(a + 1, 4)
        ]
        assert np.mean(overlaps) <= 1

    def test_class_count_parameter(self, rng):
        data = syn3(n_classes=10, n_users=100_000, n_items=1000, rng=rng)
        assert data.n_classes == 10
        assert (data.class_counts() > 0).all()


class TestExponentialFamily:
    def test_head_is_flat(self, rng):
        """Adjacent head ranks differ by ~exp(-1/(s d)) — nearly ties."""
        data = exponential_multiclass(
            n_users=1_000_000, n_classes=2, n_items=1000,
            exp_scales=[0.2, 0.2], rng=rng,
        )
        counts = np.sort(data.pair_counts()[0])[::-1]
        assert counts[0] / counts[19] < 1.3

    def test_scale_validation(self, rng):
        with pytest.raises(DomainError):
            exponential_multiclass(
                n_users=100, n_classes=2, n_items=10, exp_scales=[0.1], rng=rng
            )

    def test_class_sizes_respected(self, rng):
        data = exponential_multiclass(
            n_users=1000, n_classes=2, n_items=50,
            exp_scales=[0.05, 0.05], class_sizes=[700, 300], rng=rng,
        )
        assert data.class_counts().tolist() == [700, 300]

    def test_rejects_inconsistent_sizes(self, rng):
        with pytest.raises(DomainError):
            exponential_multiclass(
                n_users=1000, n_classes=2, n_items=50,
                exp_scales=[0.05, 0.05], class_sizes=[700, 200], rng=rng,
            )


class TestZipf:
    def test_head_dominates(self, rng):
        data = zipf_multiclass(
            n_users=100_000, n_classes=2, n_items=500, zipf_s=1.5, rng=rng
        )
        counts = data.pair_counts()[0]
        assert counts.max() > 20 * np.median(counts[counts > 0])

    def test_shared_head_consistency(self, rng):
        data = zipf_multiclass(
            n_users=200_000, n_classes=3, n_items=500, zipf_s=1.3,
            shared_head=10, head_window=15, rng=rng,
        )
        topk = data.true_topk(15)
        overlap = len(set(topk[0]) & set(topk[1]))
        assert overlap >= 6

    def test_reproducible_given_seed(self):
        a = zipf_multiclass(1000, 2, 50, rng=np.random.default_rng(5))
        b = zipf_multiclass(1000, 2, 50, rng=np.random.default_rng(5))
        assert (a.pair_counts() == b.pair_counts()).all()
