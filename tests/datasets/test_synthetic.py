"""Synthetic dataset generators (SYN1-4 and the exponential family)."""

import numpy as np
import pytest

from repro.datasets import (
    SYN1_PAIR_COUNTS,
    SYN2_CLASS_SIZES,
    SYN2_PROBE_COUNT,
    syn1,
    syn2,
    syn3,
    syn4,
    zipf_multiclass,
)
from repro.datasets.synthetic import exponential_multiclass
from repro.exceptions import DomainError


class TestSyn1:
    def test_latin_square_structure(self, rng):
        data = syn1(rng=rng)
        counts = data.pair_counts()
        assert counts.shape == (4, 4)
        # Every class and every item total the same grand sum.
        expected = sum(SYN1_PAIR_COUNTS)
        assert (counts.sum(axis=1) == expected).all()
        assert (counts.sum(axis=0) == expected).all()
        # Each row holds each magnitude exactly once.
        for row in counts:
            assert sorted(row.tolist()) == sorted(SYN1_PAIR_COUNTS)

    def test_scale(self, rng):
        data = syn1(scale=0.01, rng=rng)
        assert data.n_users == pytest.approx(sum(SYN1_PAIR_COUNTS) * 0.01 * 4, rel=0.01)


class TestSyn2:
    def test_probe_item_fixed_across_classes(self, rng):
        data = syn2(scale=0.01, rng=rng)
        counts = data.pair_counts()
        probe = int(round(SYN2_PROBE_COUNT * 0.01))
        assert (counts[:, 0] == probe).all()

    def test_class_sizes_span_regimes(self, rng):
        data = syn2(scale=0.01, rng=rng)
        sizes = data.class_counts()
        expected = np.round(np.asarray(SYN2_CLASS_SIZES) * 0.01)
        assert np.allclose(sizes, expected, rtol=0.01)


class TestSyn3Syn4:
    def test_syn3_has_shared_head(self, rng):
        data = syn3(n_classes=4, n_users=200_000, n_items=2000, rng=rng)
        topk = data.true_topk(20)
        overlaps = [
            len(set(topk[a]) & set(topk[b]))
            for a in range(4)
            for b in range(a + 1, 4)
        ]
        assert np.mean(overlaps) >= 5  # paper: ~8 shared of top 20

    def test_syn4_heads_disjoint(self, rng):
        data = syn4(n_classes=4, n_users=200_000, n_items=2000, rng=rng)
        topk = data.true_topk(20)
        overlaps = [
            len(set(topk[a]) & set(topk[b]))
            for a in range(4)
            for b in range(a + 1, 4)
        ]
        assert np.mean(overlaps) <= 1

    def test_class_count_parameter(self, rng):
        data = syn3(n_classes=10, n_users=100_000, n_items=1000, rng=rng)
        assert data.n_classes == 10
        assert (data.class_counts() > 0).all()


class TestExponentialFamily:
    def test_head_is_flat(self, rng):
        """Adjacent head ranks differ by ~exp(-1/(s d)) — nearly ties."""
        data = exponential_multiclass(
            n_users=1_000_000, n_classes=2, n_items=1000,
            exp_scales=[0.2, 0.2], rng=rng,
        )
        counts = np.sort(data.pair_counts()[0])[::-1]
        assert counts[0] / counts[19] < 1.3

    def test_scale_validation(self, rng):
        with pytest.raises(DomainError):
            exponential_multiclass(
                n_users=100, n_classes=2, n_items=10, exp_scales=[0.1], rng=rng
            )

    def test_class_sizes_respected(self, rng):
        data = exponential_multiclass(
            n_users=1000, n_classes=2, n_items=50,
            exp_scales=[0.05, 0.05], class_sizes=[700, 300], rng=rng,
        )
        assert data.class_counts().tolist() == [700, 300]

    def test_rejects_inconsistent_sizes(self, rng):
        with pytest.raises(DomainError):
            exponential_multiclass(
                n_users=1000, n_classes=2, n_items=50,
                exp_scales=[0.05, 0.05], class_sizes=[700, 200], rng=rng,
            )


class TestZipf:
    def test_head_dominates(self, rng):
        data = zipf_multiclass(
            n_users=100_000, n_classes=2, n_items=500, zipf_s=1.5, rng=rng
        )
        counts = data.pair_counts()[0]
        assert counts.max() > 20 * np.median(counts[counts > 0])

    def test_shared_head_consistency(self, rng):
        data = zipf_multiclass(
            n_users=200_000, n_classes=3, n_items=500, zipf_s=1.3,
            shared_head=10, head_window=15, rng=rng,
        )
        topk = data.true_topk(15)
        overlap = len(set(topk[0]) & set(topk[1]))
        assert overlap >= 6

    def test_reproducible_given_seed(self):
        a = zipf_multiclass(1000, 2, 50, rng=np.random.default_rng(5))
        b = zipf_multiclass(1000, 2, 50, rng=np.random.default_rng(5))
        assert (a.pair_counts() == b.pair_counts()).all()


class TestDriftSchedules:
    def _schedule(self, pattern, **kwargs):
        from repro.datasets import drift_schedule

        base = dict(n_steps=10, n_classes=3, n_items=32,
                    rng=np.random.default_rng(0))
        base.update(kwargs)
        return drift_schedule(pattern, **base)

    def test_every_step_is_a_valid_law(self):
        for pattern in ("ramp", "flip", "burst"):
            for step in self._schedule(pattern):
                assert step.class_probs.shape == (3,)
                assert step.item_probs.shape == (3, 32)
                assert step.class_probs.sum() == pytest.approx(1.0)
                np.testing.assert_allclose(step.item_probs.sum(axis=1), 1.0)
                assert step.volume >= 1.0
                assert step.pair_probs().sum() == pytest.approx(1.0)

    def test_ramp_interpolates_between_distinct_laws(self):
        schedule = self._schedule("ramp")
        first, last = schedule[0], schedule[-1]
        # Endpoints differ; the midpoint sits strictly between them.
        gap = np.abs(first.item_probs - last.item_probs).sum()
        assert gap > 0.1
        mid = schedule[len(schedule) // 2]
        to_first = np.abs(mid.item_probs - first.item_probs).sum()
        to_last = np.abs(mid.item_probs - last.item_probs).sum()
        assert 0 < to_first < gap and 0 < to_last < gap

    def test_flip_inverts_the_class_mix_midstream(self):
        schedule = self._schedule("flip", n_steps=8)
        before, after = schedule[0], schedule[-1]
        # The dominant class before the flip becomes the rarest after.
        assert np.argmax(before.class_probs) == np.argmin(after.class_probs)
        np.testing.assert_allclose(
            np.sort(before.class_probs), np.sort(after.class_probs)
        )
        # Item popularity is untouched by the flip.
        np.testing.assert_allclose(before.item_probs, after.item_probs)
        # The flip is abrupt: exactly two distinct class mixes appear.
        mixes = {tuple(np.round(s.class_probs, 12)) for s in schedule}
        assert len(mixes) == 2

    def test_burst_spikes_volume_on_one_class(self):
        schedule = self._schedule("burst", n_steps=12, burst_factor=4.0)
        bursts = [s for s in schedule if s.volume > 1.0]
        quiet = [s for s in schedule if s.volume == 1.0]
        assert bursts and quiet
        assert all(s.volume == pytest.approx(4.0) for s in bursts)
        for step in bursts:
            hot = int(np.argmax(step.class_probs))
            # The burst concentrates both the class mix and that class's
            # item pmf far above the quiet baseline.
            assert step.class_probs[hot] > max(
                q.class_probs[hot] for q in quiet
            )
            assert step.item_probs[hot].max() > 0.5

    def test_unknown_pattern_and_bad_params_rejected(self):
        from repro.datasets import drift_schedule
        from repro.exceptions import DomainError

        with pytest.raises(DomainError):
            drift_schedule("wobble", n_steps=4, n_classes=2, n_items=8)
        with pytest.raises(DomainError):
            drift_schedule("ramp", n_steps=1, n_classes=2, n_items=8)
        with pytest.raises(DomainError):
            drift_schedule("burst", n_steps=4, n_classes=2, n_items=8,
                           burst_factor=1.0)


class TestDriftStream:
    def _stream(self, pattern, **kwargs):
        from repro.datasets import drift_stream

        base = dict(n_steps=6, reports_per_step=500, n_classes=3,
                    n_items=32, rng=np.random.default_rng(1))
        base.update(kwargs)
        return list(drift_stream(pattern, **base))

    def test_batches_are_timestamped_and_in_domain(self):
        for pattern in ("ramp", "flip", "burst"):
            batches = self._stream(pattern)
            assert len(batches) == 6
            for t, batch in enumerate(batches):
                assert batch.step == t
                assert batch.time == pytest.approx(float(t))
                assert batch.labels.shape == batch.items.shape
                assert batch.timestamps.shape == batch.labels.shape
                # Arrivals are sorted within the step's interval.
                assert (np.diff(batch.timestamps) >= 0).all()
                assert batch.timestamps.min() >= batch.time
                assert batch.timestamps.max() < batch.time + 1.0
                assert batch.labels.min() >= 0 and batch.labels.max() < 3
                assert batch.items.min() >= 0 and batch.items.max() < 32

    def test_burst_steps_carry_more_reports(self):
        batches = self._stream("burst", n_steps=12)
        sizes = [b.n_reports for b in batches]
        bursts = [b for b in batches if b.truth.volume > 1.0]
        assert bursts
        for batch in bursts:
            assert batch.n_reports == pytest.approx(
                500 * batch.truth.volume, abs=1
            )
        assert max(sizes) > min(sizes)

    def test_sampled_reports_follow_the_step_law(self):
        batches = self._stream("flip", reports_per_step=20_000)
        first, last = batches[0], batches[-1]
        for batch in (first, last):
            observed = np.bincount(batch.labels, minlength=3) / batch.n_reports
            np.testing.assert_allclose(
                observed, batch.truth.class_probs, atol=0.02
            )
        # The flip is visible in the sampled labels themselves.
        hot = int(np.argmax(first.truth.class_probs))
        first_share = (first.labels == hot).mean()
        last_share = (last.labels == hot).mean()
        assert first_share > last_share + 0.1

    def test_same_seed_reproduces_the_stream(self):
        from repro.datasets import drift_stream

        def run():
            return list(drift_stream(
                "ramp", n_steps=4, reports_per_step=200, n_classes=2,
                n_items=16, rng=np.random.default_rng(7),
            ))

        for a, b in zip(run(), run()):
            np.testing.assert_array_equal(a.labels, b.labels)
            np.testing.assert_array_equal(a.items, b.items)
            np.testing.assert_array_equal(a.timestamps, b.timestamps)
