"""The repro-bench CLI and bench harness plumbing."""

import numpy as np
import pytest

from repro.bench import EXPERIMENTS, format_table
from repro.cli import main


class TestFormatTable:
    def test_alignment_and_note(self):
        out = format_table("T", ["a", "bb"], [[1, 2.5], ["x", 0.001]], note="n.b.")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "n.b." in out
        assert "2.5" in out

    def test_float_formatting(self):
        out = format_table("T", ["v"], [[123456.0], [0.00012], [0.0]])
        assert "1.23e+05" in out
        assert "0.00012" in out


class TestRegistry:
    def test_every_paper_artifact_has_an_experiment(self):
        assert set(EXPERIMENTS) == {
            "table1", "table2", "table3",
            "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
        }

    def test_experiments_have_docstrings(self):
        for fn in EXPERIMENTS.values():
            assert fn.__doc__


class TestCLI:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out and "table3" in out

    def test_no_argument_lists(self, capsys):
        assert main([]) == 0
        assert "Available experiments" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["figZ"]) == 2

    def test_runs_cheap_experiment(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert (tmp_path / "table1.txt").exists()

    def test_seed_changes_nothing_for_closed_form(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        assert main(["table2", "--seed", "9"]) == 0
        assert "Table II" in capsys.readouterr().out

    def test_list_mentions_stream(self, capsys):
        assert main(["--list"]) == 0
        assert "stream" in capsys.readouterr().out

    def test_stream_subcommand(self, capsys, tmp_path, monkeypatch):
        import json

        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        artifact = tmp_path / "BENCH_stream.json"
        monkeypatch.setenv("REPRO_BENCH_STREAM_ARTIFACT", str(artifact))
        assert (
            main(
                ["stream", "--users", "20000", "--batch-size", "4096", "--shards", "2"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "reports/sec" in out
        assert (tmp_path / "stream.txt").exists()
        payload = json.loads(artifact.read_text())
        assert payload["total_reports"] == 4 * 20000
        assert payload["n_shards"] == 2
        assert set(payload["frameworks"]) == {"hec", "ptj", "pts", "pts-cp"}
        for stats in payload["frameworks"].values():
            assert stats["reports_per_sec"] > 0

    def test_stream_flags_rejected_for_other_experiments(self, capsys):
        assert main(["table1", "--users", "1000"]) == 2
        assert "--users" in capsys.readouterr().err

    def test_stream_only_flags_rejected_for_protocol(self, capsys):
        assert main(["protocol", "--shards", "2"]) == 2
        assert "--shards" in capsys.readouterr().err

    def test_list_mentions_protocol(self, capsys):
        assert main(["--list"]) == 0
        assert "protocol" in capsys.readouterr().out

    def test_protocol_subcommand(self, capsys, tmp_path, monkeypatch):
        import json

        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        artifact = tmp_path / "BENCH_protocol.json"
        monkeypatch.setenv("REPRO_BENCH_PROTOCOL_ARTIFACT", str(artifact))
        assert main(["protocol", "--quick", "--users", "4000"]) == 0
        out = capsys.readouterr().out
        assert "users/sec" in out
        assert (tmp_path / "protocol.txt").exists()
        payload = json.loads(artifact.read_text())
        assert payload["n_users"] == 4000
        assert set(payload["frameworks"]) == {"hec", "ptj", "pts", "pts-cp"}
        for stats in payload["frameworks"].values():
            assert stats["users_per_sec"] > 0
            assert stats["baseline_users_per_sec"] > 0

    def test_stream_executor_flag(self, capsys, tmp_path, monkeypatch):
        import json

        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        artifact = tmp_path / "BENCH_stream.json"
        monkeypatch.setenv("REPRO_BENCH_STREAM_ARTIFACT", str(artifact))
        assert (
            main(
                [
                    "stream", "--users", "8000", "--batch-size", "4000",
                    "--shards", "2", "--executor", "process",
                ]
            )
            == 0
        )
        payload = json.loads(artifact.read_text())
        assert payload["executor"] == "process"
        assert payload["total_reports"] == 4 * 8000

    def test_list_mentions_serve(self, capsys):
        assert main(["--list"]) == 0
        assert "serve" in capsys.readouterr().out

    def test_serve_subcommand(self, capsys, tmp_path, monkeypatch):
        import json

        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        artifact = tmp_path / "BENCH_serve.json"
        monkeypatch.setenv("REPRO_BENCH_SERVE_ARTIFACT", str(artifact))
        assert (
            main(
                [
                    "serve", "--users", "12000", "--connections", "3",
                    "--batch-size", "1024", "--shards", "2", "--seed", "5",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "reports/sec" in out
        assert (tmp_path / "serve.txt").exists()
        payload = json.loads(artifact.read_text())
        assert payload["n_users"] == 12000
        assert payload["n_shards"] == 2
        assert len(payload["cells"]) == 1
        cell = payload["cells"][0]
        assert cell["connections"] == 3
        assert cell["reports"] == 12000
        assert cell["reports_per_sec"] > 0

    def test_serve_only_flags_rejected_elsewhere(self, capsys):
        assert main(["stream", "--connections", "2"]) == 2
        assert "--connections" in capsys.readouterr().err
        assert main(["table1", "--connections", "2"]) == 2

    def test_executor_flag_rejected_for_serve(self, capsys):
        assert main(["serve", "--executor", "process"]) == 2
        assert "--executor" in capsys.readouterr().err

    def test_list_mentions_drift(self, capsys):
        assert main(["--list"]) == 0
        assert "drift" in capsys.readouterr().out

    def test_drift_subcommand(self, capsys, tmp_path, monkeypatch):
        import json

        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        artifact = tmp_path / "BENCH_drift.json"
        monkeypatch.setenv("REPRO_BENCH_DRIFT_ARTIFACT", str(artifact))
        assert main(["drift", "--quick", "--users", "600"]) == 0
        out = capsys.readouterr().out
        assert "staleness" in out and "recall" in out
        assert (tmp_path / "drift.txt").exists()
        payload = json.loads(artifact.read_text())
        assert payload["reports_per_step"] == 600
        # Every pattern runs under both advancement configs.
        expected = {
            f"{pattern}:{config}"
            for pattern in ("ramp", "flip", "burst")
            for config in ("fixed_window", "adaptive")
        }
        assert set(payload["frameworks"]) == expected
        for stats in payload["frameworks"].values():
            assert stats["reports_per_sec"] > 0
            assert 0.0 <= stats["staleness_mean"] <= 1.0
            assert 0.0 <= stats["recall_mean"] <= 1.0
        assert set(payload["cells_detail"]) == expected
        series = payload["cells_detail"]["ramp:adaptive"]["series"]
        assert len(series) == payload["n_steps"]
        assert all("drift_score" in row for row in series)

    def test_drift_rejects_bench_only_flags(self, capsys):
        assert main(["drift", "--connections", "2"]) == 2
        assert "--connections" in capsys.readouterr().err

    def test_serve_parser_defaults(self):
        from repro.cli import build_serve_parser

        args = build_serve_parser().parse_args([])
        assert args.host == "127.0.0.1"
        assert args.port == 9009
        assert args.shards == 1
        assert args.flush_reports == 65_536
        assert args.metrics_port is None
        assert args.log_json is None

    def test_bench_artifacts_carry_meta(self, capsys, tmp_path, monkeypatch):
        import json

        from repro.bench.reporting import BENCH_META_SCHEMA

        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        artifact = tmp_path / "BENCH_stream.json"
        monkeypatch.setenv("REPRO_BENCH_STREAM_ARTIFACT", str(artifact))
        assert (
            main(
                ["stream", "--users", "8000", "--batch-size", "4000", "--shards", "2"]
            )
            == 0
        )
        meta = json.loads(artifact.read_text())["meta"]
        assert meta["schema"] == BENCH_META_SCHEMA
        for key in ("host", "platform", "python", "numpy"):
            assert isinstance(meta[key], str)
        # spawned seeds make the run replayable from the JSON alone
        assert set(meta["shard_seeds"]) == {"hec", "ptj", "pts", "pts-cp"}
        assert all(len(seeds) == 2 for seeds in meta["shard_seeds"].values())
        # and the telemetry snapshot captured the instrumented run
        metrics = meta["metrics"]
        assert any(
            key.startswith("bench_stream_seconds") for key in metrics["histograms"]
        )
        assert any(
            key.startswith("stream_ingested_total") for key in metrics["counters"]
        )


class TestObsCLI:
    def test_dump_json_live_registry(self, capsys):
        import json

        assert main(["obs", "dump", "--format=json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["schema"] == 1
        assert set(snapshot) == {"schema", "counters", "gauges", "histograms"}

    def test_dump_prom_from_bench_artifact(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        artifact = tmp_path / "BENCH_protocol.json"
        monkeypatch.setenv("REPRO_BENCH_PROTOCOL_ARTIFACT", str(artifact))
        assert main(["protocol", "--quick", "--users", "2000"]) == 0
        capsys.readouterr()
        assert main(["obs", "dump", "--format=prom", "--input", str(artifact)]) == 0
        out = capsys.readouterr().out
        assert "# TYPE bench_protocol_seconds histogram" in out
        assert "bench_protocol_seconds_count" in out

    def test_dump_json_from_raw_snapshot(self, capsys, tmp_path):
        import json

        from repro.obs import MetricsRegistry

        registry = MetricsRegistry(enabled=True)
        registry.counter("c").inc(5)
        path = tmp_path / "snap.json"
        path.write_text(json.dumps(registry.snapshot()))
        assert main(["obs", "dump", "--input", str(path)]) == 0
        assert json.loads(capsys.readouterr().out)["counters"]["c"] == 5

    def test_dump_rejects_unrecognised_input(self, capsys, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"tables": []}')
        assert main(["obs", "dump", "--input", str(path)]) == 2
        assert "neither" in capsys.readouterr().err

    def test_stream_honors_scale_env(self, capsys, tmp_path, monkeypatch):
        import json

        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        artifact = tmp_path / "BENCH_stream.json"
        monkeypatch.setenv("REPRO_BENCH_STREAM_ARTIFACT", str(artifact))
        monkeypatch.setenv("REPRO_BENCH_SCALE", "full")
        # --users/--batch-size keep the run tiny; the scale must still
        # come from the environment like every other experiment.
        assert main(["stream", "--users", "1000", "--batch-size", "500"]) == 0
        payload = json.loads(artifact.read_text())
        assert payload["scale"] == "full"


class TestComplexityModel:
    def test_rows_cover_table2(self):
        from repro.analysis.complexity import table2_rows

        rows = table2_rows(c=5, d=28_000, n=9_000_000, k=20)
        assert [r.method for r in rows] == [
            "HEC/PTS (PEM)",
            "PTJ (PEM)",
            "PTJ† (Shuffling+VP)",
            "PTS† (Shuffling+VP+CP)",
        ]

    def test_optimized_user_cost_independent_of_d(self):
        from repro.analysis.complexity import pts_optimized_costs

        small = pts_optimized_costs(5, 1_000, 10_000, 20)
        large = pts_optimized_costs(5, 1_000_000, 10_000, 20)
        assert small.user_communication == large.user_communication

    def test_pem_user_cost_grows_with_d(self):
        from repro.analysis.complexity import hec_pts_pem_costs

        small = hec_pts_pem_costs(5, 1_000, 10_000, 20)
        large = hec_pts_pem_costs(5, 1_000_000, 10_000, 20)
        assert large.user_communication > small.user_communication

    def test_ptj_costs_factor_c_more(self):
        from repro.analysis.complexity import hec_pts_pem_costs, ptj_pem_costs

        pts = hec_pts_pem_costs(8, 10_000, 1_000_000, 20)
        ptj = ptj_pem_costs(8, 10_000, 1_000_000, 20)
        assert ptj.user_communication > 6 * pts.user_communication

    def test_measured_bits_shape(self):
        from repro.analysis.complexity import measured_report_bits

        bits = measured_report_bits(5, 28_000, 20)
        assert bits["PTJ (PEM)"] > bits["HEC/PTS (PEM)"]
        # Optimized PTS report: log2(c) label bits + 4k bucket bits + flag.
        assert bits["PTS† (Shuffling+VP+CP)"] == 3 + 81

    def test_validation(self):
        from repro.analysis.complexity import hec_pts_pem_costs
        from repro.exceptions import DomainError

        with pytest.raises(DomainError):
            hec_pts_pem_costs(0, 10, 10, 10)


class TestRngHelpers:
    def test_spawn_independence(self):
        from repro.rng import ensure_rng, spawn

        parent = ensure_rng(5)
        children = spawn(parent, 3)
        draws = [c.random() for c in children]
        assert len(set(draws)) == 3

    def test_spawn_rejects_negative(self):
        from repro.rng import ensure_rng, spawn

        with pytest.raises(ValueError):
            spawn(ensure_rng(0), -1)

    def test_spawn_seeds_deterministic_and_distinct(self):
        from repro.rng import ensure_rng, spawn_seeds

        first = spawn_seeds(ensure_rng(7), 4)
        second = spawn_seeds(ensure_rng(7), 4)
        assert first == second
        assert len(set(first)) == 4
        assert all(isinstance(s, int) for s in first)

    def test_spawn_matches_spawn_seeds(self):
        from repro.rng import ensure_rng, spawn, spawn_seeds

        children = spawn(ensure_rng(3), 2)
        seeds = spawn_seeds(ensure_rng(3), 2)
        for child, seed in zip(children, seeds):
            assert child.random() == np.random.default_rng(seed).random()

    def test_ensure_rng_passthrough(self):
        from repro.rng import ensure_rng

        gen = np.random.default_rng(3)
        assert ensure_rng(gen) is gen

    def test_domain_spec_flatten_roundtrip(self):
        from repro.types import DomainSpec

        spec = DomainSpec(n_classes=3, n_items=7)
        for label in range(3):
            for item in range(7):
                assert spec.unflatten(spec.flatten(label, item)) == (label, item)

    def test_domain_spec_validation(self):
        from repro.exceptions import DomainError
        from repro.types import DomainSpec

        with pytest.raises(ValueError):
            DomainSpec(0, 5)
        spec = DomainSpec(2, 5)
        with pytest.raises(ValueError):
            spec.flatten(2, 0)
        with pytest.raises(ValueError):
            spec.unflatten(10)
