"""Optimal local hashing."""

import math

import numpy as np
import pytest

from repro.exceptions import AggregationError
from repro.mechanisms import OptimalLocalHashing


class TestConstruction:
    def test_optimal_hash_range(self):
        mech = OptimalLocalHashing(2.0, 100)
        assert mech.g == round(math.exp(2.0)) + 1

    def test_minimum_range(self):
        mech = OptimalLocalHashing(0.1, 100)
        assert mech.g >= 2

    def test_explicit_range(self):
        mech = OptimalLocalHashing(1.0, 100, g=16)
        assert mech.g == 16
        with pytest.raises(ValueError):
            OptimalLocalHashing(1.0, 100, g=1)

    def test_collision_probability_is_one_over_g(self):
        mech = OptimalLocalHashing(1.0, 50)
        assert mech.q == pytest.approx(1.0 / mech.g)


class TestProtocol:
    def test_report_structure(self, rng):
        mech = OptimalLocalHashing(1.0, 20, rng=rng)
        a, b, report = mech.privatize(7)
        assert a >= 1 and b >= 0
        assert 0 <= report < mech.g

    def test_aggregate_rejects_bad_report(self):
        mech = OptimalLocalHashing(1.0, 20)
        with pytest.raises(AggregationError):
            mech.aggregate([(3, 5, mech.g)])

    def test_estimate_is_unbiased_protocol(self, rng):
        """Full per-user OLH pipeline on a small domain."""
        mech = OptimalLocalHashing(2.0, 8, rng=rng)
        true = np.asarray([400, 250, 150, 100, 50, 30, 15, 5])
        values = np.repeat(np.arange(8), true)
        trials = np.stack(
            [
                mech.estimate(mech.aggregate([mech.privatize(int(v)) for v in values]), 1000)
                for _ in range(150)
            ]
        )
        se = math.sqrt(mech.variance(1000, 400) / 150)
        assert np.abs(trials.mean(axis=0) - true).max() < 6 * se


class TestSimulation:
    def test_simulate_is_unbiased(self, rng):
        mech = OptimalLocalHashing(1.0, 32, rng=rng)
        true = rng.multinomial(20_000, np.ones(32) / 32)
        trials = np.stack(
            [mech.estimate(mech.simulate_support(true, rng=rng), 20_000) for _ in range(300)]
        )
        se = math.sqrt(mech.variance(20_000, float(true.max())) / 300)
        assert np.abs(trials.mean(axis=0) - true).max() < 6 * se

    def test_variance_comparable_to_oue(self):
        """OLH matches OUE's variance order (Wang et al. Section 5)."""
        from repro.mechanisms import OptimizedUnaryEncoding

        olh = OptimalLocalHashing(1.0, 64)
        oue = OptimizedUnaryEncoding(1.0, 64)
        assert olh.variance(10_000) == pytest.approx(oue.variance(10_000), rel=0.25)

    def test_communication_under_domain_size(self):
        mech = OptimalLocalHashing(1.0, 1 << 20)
        assert mech.communication_bits() < (1 << 20)
