"""Optimal local hashing."""

import math

import numpy as np
import pytest

from repro.exceptions import AggregationError
from repro.mechanisms import OptimalLocalHashing


class TestConstruction:
    def test_optimal_hash_range(self):
        mech = OptimalLocalHashing(2.0, 100)
        assert mech.g == round(math.exp(2.0)) + 1

    def test_minimum_range(self):
        mech = OptimalLocalHashing(0.1, 100)
        assert mech.g >= 2

    def test_explicit_range(self):
        mech = OptimalLocalHashing(1.0, 100, g=16)
        assert mech.g == 16
        with pytest.raises(ValueError):
            OptimalLocalHashing(1.0, 100, g=1)

    def test_collision_probability_is_one_over_g(self):
        mech = OptimalLocalHashing(1.0, 50)
        assert mech.q == pytest.approx(1.0 / mech.g)


class TestProtocol:
    def test_report_structure(self, rng):
        mech = OptimalLocalHashing(1.0, 20, rng=rng)
        a, b, report = mech.privatize(7)
        assert a >= 1 and b >= 0
        assert 0 <= report < mech.g

    def test_aggregate_rejects_bad_report(self):
        mech = OptimalLocalHashing(1.0, 20)
        with pytest.raises(AggregationError):
            mech.aggregate([(3, 5, mech.g)])

    def test_estimate_is_unbiased_protocol(self, rng):
        """Full per-user OLH pipeline on a small domain."""
        mech = OptimalLocalHashing(2.0, 8, rng=rng)
        true = np.asarray([400, 250, 150, 100, 50, 30, 15, 5])
        values = np.repeat(np.arange(8), true)
        trials = np.stack(
            [
                mech.estimate(mech.aggregate([mech.privatize(int(v)) for v in values]), 1000)
                for _ in range(150)
            ]
        )
        se = math.sqrt(mech.variance(1000, 400) / 150)
        assert np.abs(trials.mean(axis=0) - true).max() < 6 * se


class TestBulkAggregate:
    def test_bulk_matches_per_report_reference(self, rng):
        """The vectorised aggregate equals the literal per-report loop."""
        from repro.mechanisms.olh import _universal_hash

        mech = OptimalLocalHashing(1.0, 17, rng=rng)
        reports = [mech.privatize(int(v)) for v in rng.integers(0, 17, 200)]
        domain = np.arange(17)
        expected = np.zeros(17, dtype=np.int64)
        for a, b, report in reports:
            expected += _universal_hash(domain, a, b, mech.g) == report
        np.testing.assert_array_equal(mech.aggregate(reports), expected)

    def test_bulk_blocking_is_invisible(self, rng):
        """Block size only affects memory, never the counts."""
        from repro.mechanisms.olh import bulk_hash_support

        mech = OptimalLocalHashing(1.0, 40, rng=rng)
        arr = np.asarray([mech.privatize(int(v)) for v in rng.integers(0, 40, 100)])
        small = bulk_hash_support(
            arr[:, 0], arr[:, 1], arr[:, 2], 40, mech.g, block_elements=64
        )
        large = bulk_hash_support(arr[:, 0], arr[:, 1], arr[:, 2], 40, mech.g)
        np.testing.assert_array_equal(small, large)

    def test_empty_and_malformed_reports(self):
        mech = OptimalLocalHashing(1.0, 8)
        assert mech.aggregate([]).tolist() == [0] * 8
        with pytest.raises(AggregationError):
            mech.aggregate([(1, 2)])


class TestSimulation:
    def test_simulate_is_unbiased(self, rng):
        mech = OptimalLocalHashing(1.0, 32, rng=rng)
        true = rng.multinomial(20_000, np.ones(32) / 32)
        trials = np.stack(
            [mech.estimate(mech.simulate_support(true, rng=rng), 20_000) for _ in range(300)]
        )
        se = math.sqrt(mech.variance(20_000, float(true.max())) / 300)
        assert np.abs(trials.mean(axis=0) - true).max() < 6 * se

    def test_variance_comparable_to_oue(self):
        """OLH matches OUE's variance order (Wang et al. Section 5)."""
        from repro.mechanisms import OptimizedUnaryEncoding

        olh = OptimalLocalHashing(1.0, 64)
        oue = OptimizedUnaryEncoding(1.0, 64)
        assert olh.variance(10_000) == pytest.approx(oue.variance(10_000), rel=0.25)

    def test_communication_under_domain_size(self):
        mech = OptimalLocalHashing(1.0, 1 << 20)
        assert mech.communication_bits() < (1 << 20)
