"""Report-plane batch/loop equivalence: for every oracle the columnar
``aggregate_batch(privatize_many(values))`` path matches the per-report
``privatize``/``aggregate`` loop — exactly where the kernels consume the
generator identically, in distribution everywhere."""

import numpy as np
import pytest

from repro.mechanisms import (
    CorrelatedPerturbation,
    GeneralizedRandomResponse,
    HadamardResponse,
    OptimalLocalHashing,
    OptimizedUnaryEncoding,
    Rappor,
    SymmetricUnaryEncoding,
    ValidityPerturbation,
    batch_support,
    grouped_batch_support,
)
from repro.types import INVALID_ITEM

EPS = 1.4

ORACLES = {
    "grr": lambda rng: GeneralizedRandomResponse(EPS, 12, rng=rng),
    "oue": lambda rng: OptimizedUnaryEncoding(EPS, 9, rng=rng),
    "sue": lambda rng: SymmetricUnaryEncoding(EPS, 9, rng=rng),
    "olh": lambda rng: OptimalLocalHashing(EPS, 10, rng=rng),
    "rappor": lambda rng: Rappor(4.0, 8, rng=rng),
    "hr": lambda rng: HadamardResponse(EPS, 10, rng=rng),
    "vp": lambda rng: ValidityPerturbation(EPS, 9, rng=rng),
}


def _values(mech, rng, n=400):
    values = rng.integers(0, mech.domain_size, size=n)
    if isinstance(mech, ValidityPerturbation):
        values = np.where(rng.random(n) < 0.2, INVALID_ITEM, values)
    return values


class TestExactAggregation:
    """aggregate is aggregate_batch: identical folds of identical reports."""

    @pytest.mark.parametrize("name", sorted(ORACLES))
    def test_aggregate_batch_equals_per_report_aggregate(self, name):
        rng = np.random.default_rng(11)
        mech = ORACLES[name](rng)
        values = _values(mech, np.random.default_rng(1))
        reports = mech.privatize_many(values)
        batched = mech.aggregate_batch(reports)
        listed = mech.aggregate([np.asarray(r) for r in np.asarray(reports)])
        np.testing.assert_array_equal(batched, listed)

    @pytest.mark.parametrize("name", sorted(ORACLES))
    def test_accumulator_split_matches_aggregate_batch(self, name):
        rng = np.random.default_rng(12)
        mech = ORACLES[name](rng)
        values = _values(mech, np.random.default_rng(2))
        reports = np.asarray(mech.privatize_many(values))
        acc = mech.accumulator()
        acc.ingest_batch(reports[:150])
        acc.ingest_batch(reports[150:])
        np.testing.assert_array_equal(acc.support(), mech.aggregate_batch(reports))
        assert acc.n == len(values)


class TestDrawIdenticalKernels:
    """The one-hot and Bloom kernels consume uniforms row-major, so the
    batch is draw-for-draw the per-user loop on the same generator."""

    @pytest.mark.parametrize("name", ["oue", "sue", "vp", "rappor"])
    def test_privatize_many_equals_privatize_loop(self, name):
        values = _values(ORACLES[name](np.random.default_rng(0)), np.random.default_rng(3), n=64)
        batch = ORACLES[name](np.random.default_rng(42)).privatize_many(values)
        looped_mech = ORACLES[name](np.random.default_rng(42))
        looped = np.stack([looped_mech.privatize(int(v)) for v in values])
        np.testing.assert_array_equal(np.asarray(batch), looped)


class TestDistributionalEquivalence:
    """Batch and loop paths induce the same estimate distribution
    (seeded mean agreement, 5-sigma)."""

    @pytest.mark.parametrize("name", sorted(ORACLES))
    def test_estimates_agree_in_mean(self, name):
        probe = ORACLES[name](np.random.default_rng(0))
        d = probe.domain_size
        values = np.random.default_rng(4).integers(0, d, size=300)
        n = values.size

        batch_trials = []
        for trial in range(40):
            mech = ORACLES[name](np.random.default_rng(100 + trial))
            batch_trials.append(
                mech.estimate(mech.aggregate_batch(mech.privatize_many(values)), n)
            )
        loop_trials = []
        for trial in range(20):
            mech = ORACLES[name](np.random.default_rng(900 + trial))
            reports = [mech.privatize(int(v)) for v in values]
            loop_trials.append(mech.estimate(mech.aggregate(reports), n))
        batch_trials = np.stack(batch_trials)
        loop_trials = np.stack(loop_trials)
        sigma = np.sqrt(
            batch_trials.var(axis=0) / len(batch_trials)
            + loop_trials.var(axis=0) / len(loop_trials)
        )
        diff = np.abs(batch_trials.mean(axis=0) - loop_trials.mean(axis=0))
        assert (diff < 5 * sigma + 1e-9).all()

    def test_correlated_estimates_agree_in_mean(self):
        c, d, n = 3, 5, 400
        rng = np.random.default_rng(5)
        labels = rng.integers(0, c, size=n)
        items = rng.integers(0, d, size=n)

        def estimates(seed, batched):
            mech = CorrelatedPerturbation(1.0, 1.0, n_classes=c, n_items=d,
                                          rng=np.random.default_rng(seed))
            if batched:
                support = mech.aggregate_batch(mech.privatize_many(labels, items))
            else:
                reports = [mech.privatize(int(l), int(i)) for l, i in zip(labels, items)]
                support = mech.aggregate(reports)
            return mech.estimate(support)

        batch_trials = np.stack([estimates(200 + t, True) for t in range(40)])
        loop_trials = np.stack([estimates(700 + t, False) for t in range(20)])
        sigma = np.sqrt(
            batch_trials.var(axis=0) / len(batch_trials)
            + loop_trials.var(axis=0) / len(loop_trials)
        )
        diff = np.abs(batch_trials.mean(axis=0) - loop_trials.mean(axis=0))
        assert (diff < 5 * sigma + 1e-9).all()


class TestEngine:
    def test_blocked_batch_support_sums_to_full_population(self):
        """Tiny blocks: every user reports exactly once."""
        mech = GeneralizedRandomResponse(EPS, 6, rng=np.random.default_rng(6))
        values = np.random.default_rng(7).integers(0, 6, size=500)
        support = batch_support(mech, values, block_elements=16)
        assert support.sum() == 500

    def test_blocked_equals_unblocked_for_row_major_kernels(self):
        """The one-hot kernel consumes uniforms row-major, so block
        boundaries do not change the reports."""
        values = np.random.default_rng(8).integers(0, 9, size=120)
        blocked = batch_support(
            OptimizedUnaryEncoding(EPS, 9, rng=np.random.default_rng(3)),
            values,
            block_elements=50,
        )
        whole = batch_support(
            OptimizedUnaryEncoding(EPS, 9, rng=np.random.default_rng(3)),
            values,
            block_elements=10**9,
        )
        np.testing.assert_array_equal(blocked, whole)

    def test_empty_batch_yields_typed_zeros(self):
        mech = OptimizedUnaryEncoding(EPS, 7, rng=np.random.default_rng(9))
        support = batch_support(mech, np.zeros(0, dtype=np.int64))
        assert support.shape == (7,)
        assert (support == 0).all()

    def test_ragged_final_block_covers_every_user(self):
        """n_values not divisible by the block row count: the last span is
        a remainder block and no user is dropped or double-counted."""
        from repro.mechanisms.engine import batch_spans

        spans = list(batch_spans(103, 1, block_elements=10))
        assert [s.start for s in spans] == list(range(0, 103, 10))
        mech = GeneralizedRandomResponse(EPS, 6, rng=np.random.default_rng(20))
        values = np.random.default_rng(21).integers(0, 6, size=103)
        support = batch_support(mech, values, block_elements=10)
        assert support.sum() == 103

    def test_block_smaller_than_row_width_degrades_to_single_rows(self):
        """A cap below one report's width still privatises every user —
        one row per block — and matches the unblocked run draw-for-draw
        for the row-major one-hot kernel."""
        values = np.random.default_rng(22).integers(0, 9, size=37)
        tiny = batch_support(
            OptimizedUnaryEncoding(EPS, 9, rng=np.random.default_rng(23)),
            values,
            block_elements=3,  # < domain_size=9, i.e. less than one row
        )
        whole = batch_support(
            OptimizedUnaryEncoding(EPS, 9, rng=np.random.default_rng(23)),
            values,
            block_elements=10**9,
        )
        np.testing.assert_array_equal(tiny, whole)

    def test_zero_user_batch_for_multi_column_mechanism(self):
        mech = CorrelatedPerturbation(1.0, 1.0, n_classes=3, n_items=5,
                                      rng=np.random.default_rng(24))
        empty = np.zeros(0, dtype=np.int64)
        support = batch_support(mech, (empty, empty))
        assert support.item_support.shape == (3, 5)
        assert support.item_support.sum() == 0
        assert support.label_counts.sum() == 0

    def test_zero_user_grouped_batch_yields_typed_zeros(self):
        mech = OptimizedUnaryEncoding(EPS, 5, rng=np.random.default_rng(25))
        empty = np.zeros(0, dtype=np.int64)
        out = grouped_batch_support(mech, empty, empty, 4)
        assert out.shape == (4, 5)
        assert out.dtype == np.int64
        assert (out == 0).all()

    @pytest.mark.parametrize("cap", [0, -5])
    def test_non_positive_block_elements_rejected(self, cap):
        from repro.exceptions import ConfigurationError
        from repro.mechanisms.engine import batch_spans

        mech = GeneralizedRandomResponse(EPS, 6, rng=np.random.default_rng(26))
        with pytest.raises(ConfigurationError):
            list(batch_spans(10, 1, block_elements=cap))
        with pytest.raises(ConfigurationError):
            batch_support(mech, np.arange(6), block_elements=cap)

    def test_grouped_batch_support_rows_sum_to_group_sizes(self):
        mech = OptimizedUnaryEncoding(8.0, 5, rng=np.random.default_rng(10))
        rng = np.random.default_rng(11)
        groups = rng.integers(0, 3, size=600)
        values = rng.integers(0, 5, size=600)
        out = grouped_batch_support(mech, groups, values, 3, block_elements=64)
        assert out.shape == (3, 5)
        # Each report's expected bit count is p + (d-1)q, so row sums track
        # group sizes scaled by it.
        sizes = np.bincount(groups, minlength=3)
        per_report = mech.p + (mech.domain_size - 1) * mech.q
        assert np.abs(out.sum(axis=1) - per_report * sizes).max() < 30


class TestStreamingEstimateFromReports:
    """estimate_from_reports counts users during aggregation and never
    materialises the report iterable."""

    def test_generator_input_matches_list_input(self):
        mech = GeneralizedRandomResponse(EPS, 8, rng=np.random.default_rng(13))
        values = np.random.default_rng(14).integers(0, 8, size=300)
        reports = list(mech.privatize_many(values))
        from_list = mech.estimate(mech.aggregate(reports), len(reports))
        from_generator = mech.estimate_from_reports(
            (r for r in reports), chunk_size=17
        )
        np.testing.assert_allclose(from_generator, from_list)

    @pytest.mark.parametrize("name", sorted(ORACLES))
    def test_every_oracle_estimates_from_a_lazy_iterable(self, name):
        mech = ORACLES[name](np.random.default_rng(15))
        values = _values(mech, np.random.default_rng(16), n=120)
        reports = [np.asarray(r) for r in np.asarray(mech.privatize_many(values))]
        out = mech.estimate_from_reports(iter(reports), chunk_size=7)
        expected = mech.estimate(mech.aggregate(reports), len(reports))
        np.testing.assert_allclose(out, expected)

    def test_ndarray_input_short_circuits(self):
        mech = OptimizedUnaryEncoding(EPS, 6, rng=np.random.default_rng(17))
        reports = mech.privatize_many(np.arange(6).repeat(10))
        out = mech.estimate_from_reports(reports)
        expected = mech.estimate(mech.aggregate_batch(reports), 60)
        np.testing.assert_allclose(out, expected)
