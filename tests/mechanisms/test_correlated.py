"""Correlated perturbation mechanism (paper Section IV-B, Eq. 4)."""

import numpy as np
import pytest

from repro.exceptions import AggregationError, ConfigurationError, DomainError
from repro.mechanisms import CorrelatedPerturbation
from repro.types import INVALID_ITEM


@pytest.fixture
def mech(rng):
    return CorrelatedPerturbation(1.0, 1.0, n_classes=3, n_items=4, rng=rng)


@pytest.fixture
def pair_counts(rng):
    return rng.multinomial(12_000, np.ones(12) / 12).reshape(3, 4)


class TestConstruction:
    def test_total_budget(self, mech):
        assert mech.epsilon == pytest.approx(2.0)

    def test_rejects_single_class(self):
        with pytest.raises(ConfigurationError):
            CorrelatedPerturbation(1.0, 1.0, n_classes=1, n_items=4)

    def test_probabilities_match_components(self, mech):
        import math

        e = math.e
        assert mech.p1 == pytest.approx(e / (e + 2))
        assert mech.p2 == 0.5
        assert mech.q2 == pytest.approx(1 / (e + 1))


class TestClientSide:
    def test_report_shape(self, mech):
        label, bits = mech.privatize(1, 2)
        assert 0 <= label < 3
        assert bits.shape == (5,)

    def test_rejects_bad_label(self, mech):
        with pytest.raises(DomainError):
            mech.privatize(3, 0)

    def test_invalid_item_allowed(self, mech):
        label, bits = mech.privatize(0, INVALID_ITEM)
        assert bits.shape == (5,)

    def test_label_flip_invalidates_item(self, rng):
        """When the perturbed label differs, the encoded item must be the
        invalid flag — check via the bit-set rates at position item."""
        mech = CorrelatedPerturbation(4.0, 4.0, n_classes=2, n_items=2, rng=rng)
        n = 8000
        flipped_item_bits = []
        for _ in range(n):
            label, bits = mech.privatize(0, 1)
            if label != 0:
                flipped_item_bits.append(int(bits[1]))
        # For flipped labels the item bit is background noise only (rate q2).
        rate = np.mean(flipped_item_bits)
        se = np.sqrt(mech.q2 * (1 - mech.q2) / len(flipped_item_bits))
        assert abs(rate - mech.q2) < 5 * se


class TestAggregation:
    def test_aggregate_shapes(self, mech):
        reports = [mech.privatize(l, i) for l in range(3) for i in range(4)]
        support = mech.aggregate(reports)
        assert support.item_support.shape == (3, 4)
        assert support.flag_support.shape == (3,)
        assert support.label_counts.shape == (3,)
        assert support.n_users == 12
        assert support.label_counts.sum() == 12

    def test_aggregate_rejects_bad_bits(self, mech):
        with pytest.raises(AggregationError):
            mech.aggregate([(0, np.zeros(4, dtype=np.uint8))])

    def test_aggregate_rejects_bad_label(self, mech):
        with pytest.raises(AggregationError):
            mech.aggregate([(7, np.zeros(5, dtype=np.uint8))])

    def test_supports_merge(self, mech, pair_counts, rng):
        a = mech.simulate_support(pair_counts, rng=rng)
        b = mech.simulate_support(pair_counts, rng=rng)
        merged = a + b
        assert merged.n_users == a.n_users + b.n_users
        assert (merged.item_support == a.item_support + b.item_support).all()


class TestEquation4:
    def test_expected_support_formula(self, mech):
        """The three-population decomposition in the module docstring."""
        f, n, n_total = 500.0, 2000.0, 9000.0
        expected = mech.expected_support(f, n, n_total)
        manual = (
            f * mech.p1 * (1 - mech.q2) * mech.p2
            + (n - f) * mech.p1 * (1 - mech.q2) * mech.q2
            + (n_total - n) * mech.q1 * (1 - mech.p2) * mech.q2
        )
        assert expected == pytest.approx(manual)

    def test_calibration_inverts_expectation(self, mech, pair_counts):
        """Feeding exact expected supports through Eq. (4) returns the
        truth — the algebraic core of Theorem 3."""
        from repro.mechanisms import CorrelatedSupport

        counts = pair_counts.astype(np.float64)
        n_total = counts.sum()
        class_sizes = counts.sum(axis=1)
        item_support = np.empty_like(counts)
        for c in range(3):
            for i in range(4):
                item_support[c, i] = mech.expected_support(
                    counts[c, i], class_sizes[c], n_total
                )
        label_counts = class_sizes * mech.p1 + (n_total - class_sizes) * mech.q1
        support = CorrelatedSupport(item_support, np.zeros(3), label_counts, int(n_total))
        estimate = mech.estimate(support)
        assert np.allclose(estimate, counts)

    def test_estimate_is_unbiased(self, mech, pair_counts, rng):
        """Theorem 3 empirically: the Monte-Carlo mean of Eq. (4) matches
        the true pair counts."""
        trials = np.stack(
            [
                mech.estimate(mech.simulate_support(pair_counts, rng=rng))
                for _ in range(500)
            ]
        )
        n_total = pair_counts.sum()
        worst_var = mech.variance(
            float(pair_counts.max()), float(pair_counts.sum(axis=1).max()), n_total
        )
        se = np.sqrt(worst_var / 500)
        assert np.abs(trials.mean(axis=0) - pair_counts).max() < 6 * se

    def test_variance_tracks_theorem8(self, mech, rng):
        """Empirical variance of one cell tracks Eq. (5).

        Eq. (5) sums the support and class-size terms as if independent;
        in reality ``Cov(f̃, ñ) > 0`` and the estimator *subtracts* the
        class correction, so the true variance sits somewhat below the
        closed form.  We assert the empirical value lands in
        ``[0.5, 1.1] x`` theory — same order, never above.
        """
        pair_counts = np.asarray([[3000, 500, 300, 200], [2000, 1000, 500, 500], [1500, 1500, 500, 500]])
        estimates = np.stack(
            [
                mech.estimate(mech.simulate_support(pair_counts, rng=rng))[0, 0]
                for _ in range(2500)
            ]
        )
        theory = mech.variance(3000.0, 4000.0, float(pair_counts.sum()))
        assert 0.5 * theory < estimates.var() < 1.1 * theory


class TestProtocolAgreement:
    def test_simulate_matches_protocol_moments(self, rng):
        mech = CorrelatedPerturbation(1.0, 1.0, n_classes=2, n_items=3, rng=rng)
        counts = np.asarray([[300, 100, 50], [120, 200, 30]])
        labels = np.repeat([0, 1], counts.sum(axis=1))
        items = np.concatenate([np.repeat(np.arange(3), counts[c]) for c in range(2)])
        proto = np.stack(
            [
                mech.aggregate(
                    [mech.privatize(int(l), int(i)) for l, i in zip(labels, items)]
                ).item_support
                for _ in range(60)
            ]
        )
        sim = np.stack(
            [mech.simulate_support(counts, rng=rng).item_support for _ in range(300)]
        )
        sigma = np.sqrt(sim.var(axis=0) / 300 + proto.var(axis=0) / 60)
        assert (np.abs(sim.mean(axis=0) - proto.mean(axis=0)) < 5 * sigma + 1e-9).all()

    def test_simulate_with_pre_invalid_items(self, mech, rng):
        counts = np.asarray([[100, 50, 25, 25], [80, 80, 20, 20], [50, 50, 50, 50]])
        invalid = np.asarray([40, 0, 10])
        support = mech.simulate_support(counts, rng=rng, invalid_per_class=invalid)
        assert support.n_users == counts.sum() + invalid.sum()
        assert support.label_counts.sum() == support.n_users

    def test_simulate_rejects_shape_mismatch(self, mech, rng):
        with pytest.raises(AggregationError):
            mech.simulate_support(np.zeros((2, 4), dtype=np.int64), rng=rng)

    def test_communication_bits(self, mech):
        # 2 bits of label + 5 item/flag bits.
        assert mech.communication_bits() == 2 + 5
