"""Deterministic threaded block execution and the ``with_rng`` contract.

The engine's determinism guarantee has two halves:

* the default (``threads=None``) serial path privatises blocks
  sequentially off the oracle's own generator — bit-identical to the
  pre-threading engine;
* any explicit thread count switches to pre-split per-block streams with
  an ordered reduction, so ``threads=1`` and ``threads=k`` agree
  bit-for-bit whether or not a GIL-free backend lets blocks overlap.

The NumPy reference backend never engages the pool, so the pooled path
is exercised here by monkeypatching a fake GIL-free backend — correctness
must not depend on whether block thunks run inline or on pool workers.
"""

import threading

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.mechanisms import (
    AdaptiveMechanism,
    CorrelatedPerturbation,
    GeneralizedRandomResponse,
    OptimalLocalHashing,
    OptimizedUnaryEncoding,
)
from repro.mechanisms import engine
from repro.mechanisms.backends import KernelBackend
from repro.mechanisms.engine import (
    batch_support,
    default_thread_count,
    grouped_batch_support,
    set_default_threads,
)


@pytest.fixture(autouse=True)
def _no_ambient_thread_default(monkeypatch):
    """Tests control the schedule explicitly; shield them from the
    process default and the REPRO_THREADS environment variable."""
    monkeypatch.delenv(engine.THREADS_ENV, raising=False)
    previous = set_default_threads(None)
    yield
    set_default_threads(previous)


def _values(n=3000, domain=24, seed=0):
    return np.random.default_rng(seed).integers(0, domain, size=n)


ORACLE_FACTORIES = [
    lambda: GeneralizedRandomResponse(1.0, 24, rng=42),
    lambda: OptimizedUnaryEncoding(1.0, 24, rng=42),
    lambda: OptimalLocalHashing(1.0, 24, rng=42),
]


class TestThreadCountInvariance:
    @pytest.mark.parametrize("factory", ORACLE_FACTORIES)
    def test_batch_support_independent_of_thread_count(self, factory):
        values = _values()
        results = [
            batch_support(factory(), values, block_elements=4096, threads=k)
            for k in (1, 2, 4)
        ]
        np.testing.assert_array_equal(results[0], results[1])
        np.testing.assert_array_equal(results[0], results[2])

    def test_correlated_batch_support_independent_of_thread_count(self):
        rng = np.random.default_rng(1)
        labels = rng.integers(0, 5, size=2000)
        items = rng.integers(0, 30, size=2000)
        supports = [
            batch_support(
                CorrelatedPerturbation(0.6, 0.6, 5, 30, rng=42),
                (labels, items),
                block_elements=4096,
                threads=k,
            )
            for k in (1, 4)
        ]
        np.testing.assert_array_equal(
            supports[0].item_support, supports[1].item_support
        )
        np.testing.assert_array_equal(
            supports[0].flag_support, supports[1].flag_support
        )
        np.testing.assert_array_equal(
            supports[0].label_counts, supports[1].label_counts
        )
        assert supports[0].n_users == supports[1].n_users

    def test_grouped_batch_support_independent_of_thread_count(self):
        rng = np.random.default_rng(2)
        groups = rng.integers(0, 6, size=2500)
        values = rng.integers(0, 16, size=2500)
        results = [
            grouped_batch_support(
                OptimizedUnaryEncoding(1.0, 16, rng=7),
                groups,
                values,
                6,
                block_elements=2048,
                threads=k,
            )
            for k in (1, 4)
        ]
        np.testing.assert_array_equal(results[0], results[1])

    def test_single_block_threaded_equals_whole_batch(self):
        """With one block the split-stream schedule has one stream: the
        result must match a direct privatise+aggregate of that stream."""
        values = _values(500)
        threaded = batch_support(
            GeneralizedRandomResponse(1.0, 24, rng=5), values, threads=4
        )
        serial = batch_support(
            GeneralizedRandomResponse(1.0, 24, rng=5), values, threads=1
        )
        np.testing.assert_array_equal(threaded, serial)


class TestSerialDefault:
    def test_default_matches_manual_sequential_loop(self):
        """``threads=None`` is the legacy engine, byte for byte."""
        values = _values(2000)
        got = batch_support(
            GeneralizedRandomResponse(1.0, 24, rng=9),
            values,
            block_elements=4096,
        )
        oracle = GeneralizedRandomResponse(1.0, 24, rng=9)
        width = max(1, int(oracle.communication_bits()))
        expected = None
        for cut in engine.batch_spans(values.size, width, 4096):
            block = oracle.aggregate_batch(oracle.privatize_many(values[cut]))
            expected = block if expected is None else expected + block
        np.testing.assert_array_equal(got, expected)

    def test_grouped_default_matches_add_at_loop(self):
        rng = np.random.default_rng(3)
        groups = rng.integers(0, 4, size=1200)
        values = rng.integers(0, 10, size=1200)
        got = grouped_batch_support(
            OptimizedUnaryEncoding(1.0, 10, rng=11), groups, values, 4
        )
        oracle = OptimizedUnaryEncoding(1.0, 10, rng=11)
        expected = np.zeros((4, 10), dtype=np.int64)
        np.add.at(
            expected, groups, np.asarray(oracle.privatize_many(values))
        )
        np.testing.assert_array_equal(got, expected)

    def test_empty_batch_keeps_typed_zeros(self):
        out = batch_support(
            GeneralizedRandomResponse(1.0, 8, rng=0),
            np.asarray([], dtype=np.int64),
            threads=4,
        )
        np.testing.assert_array_equal(out, np.zeros(8))


class TestPooledExecution:
    def test_pool_engages_on_gil_free_backend_without_changing_results(
        self, monkeypatch
    ):
        values = _values(4000)
        reference = batch_support(
            GeneralizedRandomResponse(1.0, 24, rng=21),
            values,
            block_elements=1024,
            threads=1,
        )

        seen_threads = set()

        class _Recording(GeneralizedRandomResponse):
            def privatize_many(self, batch):
                seen_threads.add(threading.current_thread().name)
                return super().privatize_many(batch)

        fake = KernelBackend(name="fake", gil_free=True, kernels={})
        monkeypatch.setattr(engine, "active_backend", lambda: fake)
        pooled = batch_support(
            _Recording(1.0, 24, rng=21),
            values,
            block_elements=1024,
            threads=4,
        )
        np.testing.assert_array_equal(pooled, reference)
        assert any(name.startswith("repro-engine") for name in seen_threads)

    def test_numpy_backend_never_spawns_pool_threads(self):
        values = _values(2000)
        seen_threads = set()

        class _Recording(GeneralizedRandomResponse):
            def privatize_many(self, batch):
                seen_threads.add(threading.current_thread().name)
                return super().privatize_many(batch)

        batch_support(
            _Recording(1.0, 24, rng=21), values, block_elements=1024, threads=4
        )
        assert seen_threads == {threading.current_thread().name}


class TestThreadResolution:
    def test_set_default_threads_round_trip(self):
        assert set_default_threads(3) is None
        assert engine._resolve_threads(None) == 3
        assert set_default_threads(None) == 3
        assert engine._resolve_threads(None) is None

    def test_env_var_feeds_resolution(self, monkeypatch):
        monkeypatch.setenv(engine.THREADS_ENV, "2")
        assert engine._resolve_threads(None) == 2
        monkeypatch.setenv(engine.THREADS_ENV, "auto")
        assert engine._resolve_threads(None) == default_thread_count()

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(engine.THREADS_ENV, "2")
        set_default_threads(5)
        assert engine._resolve_threads(7) == 7
        assert engine._resolve_threads(None) == 5

    def test_auto_is_cpu_bounded(self):
        assert 1 <= engine._check_threads("auto") <= 8

    def test_invalid_thread_counts_rejected(self):
        with pytest.raises(ConfigurationError):
            set_default_threads(0)
        with pytest.raises(ConfigurationError):
            batch_support(
                GeneralizedRandomResponse(1.0, 8, rng=0),
                np.asarray([1, 2]),
                threads=0,
            )


class TestWithRng:
    def test_base_clone_shares_parameters_not_generator(self):
        oracle = GeneralizedRandomResponse(1.0, 16, rng=0)
        clone = oracle.with_rng(123)
        assert clone is not oracle
        assert clone.rng is not oracle.rng
        assert clone.p == oracle.p and clone.q == oracle.q
        # the original generator's stream is untouched by the clone
        before = GeneralizedRandomResponse(1.0, 16, rng=0).rng.random(4)
        clone.rng.random(10)
        np.testing.assert_array_equal(oracle.rng.random(4), before)

    def test_existing_generator_passes_through(self):
        oracle = GeneralizedRandomResponse(1.0, 16, rng=0)
        generator = np.random.default_rng(77)
        assert oracle.with_rng(generator).rng is generator

    def test_adaptive_rebinds_inner_mechanism(self):
        oracle = AdaptiveMechanism(1.0, 64, rng=0)
        clone = oracle.with_rng(123)
        assert clone._inner is not oracle._inner
        assert clone._inner.rng is clone.rng
        assert oracle._inner.rng is oracle.rng

    def test_correlated_rebinds_both_sub_mechanisms_to_one_stream(self):
        oracle = CorrelatedPerturbation(0.5, 0.5, 4, 20, rng=0)
        clone = oracle.with_rng(123)
        assert clone._label_mech is not oracle._label_mech
        assert clone._item_mech is not oracle._item_mech
        assert clone._label_mech.rng is clone.rng
        assert clone._item_mech.rng is clone.rng
