"""Adaptive GRR/OUE selection (Wang et al.'s d < 3e^ε + 2 rule)."""

import math

import numpy as np
import pytest

from repro.mechanisms import AdaptiveMechanism, grr_beats_oue, make_adaptive
from repro.mechanisms.grr import GeneralizedRandomResponse
from repro.mechanisms.ue import OptimizedUnaryEncoding


class TestRule:
    def test_threshold_boundary(self):
        eps = 1.0
        threshold = 3 * math.exp(eps) + 2
        assert grr_beats_oue(eps, int(threshold) - 1)
        assert not grr_beats_oue(eps, int(threshold) + 1)

    def test_rule_matches_actual_variances(self):
        """The selector must pick the lower-variance oracle on both sides
        of the threshold."""
        for eps in (0.5, 1.0, 2.0):
            for d in (2, 5, 20, 200, 2000):
                grr = GeneralizedRandomResponse(eps, d)
                oue = OptimizedUnaryEncoding(eps, d)
                better_is_grr = grr.variance(10_000) < oue.variance(10_000)
                assert grr_beats_oue(eps, d) == better_is_grr

    def test_factory_returns_winner(self):
        assert make_adaptive(1.0, 4).name == "grr"
        assert make_adaptive(1.0, 1000).name == "oue"


class TestFacade:
    def test_selected_property(self):
        assert AdaptiveMechanism(1.0, 4).selected == "grr"
        assert AdaptiveMechanism(1.0, 500).selected == "oue"

    def test_delegation_roundtrip(self, rng):
        mech = AdaptiveMechanism(2.0, 6, rng=rng)
        true = np.asarray([500, 200, 150, 100, 40, 10])
        support = mech.simulate_support(true, rng=rng)
        estimate = mech.estimate(support, 1000)
        assert estimate.shape == (6,)

    def test_estimate_is_unbiased_both_sides(self, rng):
        for d in (4, 64):
            mech = AdaptiveMechanism(1.0, d, rng=rng)
            true = rng.multinomial(20_000, np.ones(d) / d)
            trials = np.stack(
                [
                    mech.estimate(mech.simulate_support(true, rng=rng), 20_000)
                    for _ in range(200)
                ]
            )
            se = math.sqrt(mech.variance(20_000, float(true.max())) / 200)
            assert np.abs(trials.mean(axis=0) - true).max() < 6 * se

    def test_communication_delegates(self):
        assert AdaptiveMechanism(1.0, 4).communication_bits() == 2
        assert AdaptiveMechanism(1.0, 500).communication_bits() == 500
