"""Privacy-budget splitting."""

import pytest

from repro.exceptions import PrivacyBudgetError
from repro.mechanisms import PrivacyBudget, split_budget


class TestSplitBudget:
    def test_even_split_default(self):
        eps1, eps2 = split_budget(4.0)
        assert eps1 == eps2 == 2.0

    def test_fractional_split(self):
        eps1, eps2 = split_budget(4.0, label_fraction=0.25)
        assert eps1 == pytest.approx(1.0)
        assert eps2 == pytest.approx(3.0)

    def test_halves_sum_to_total(self):
        for fraction in (0.1, 0.37, 0.9):
            eps1, eps2 = split_budget(3.3, fraction)
            assert eps1 + eps2 == pytest.approx(3.3)
            assert eps1 > 0 and eps2 > 0

    def test_rejects_degenerate_fractions(self):
        with pytest.raises(PrivacyBudgetError):
            split_budget(1.0, 0.0)
        with pytest.raises(PrivacyBudgetError):
            split_budget(1.0, 1.0)

    def test_rejects_bad_epsilon(self):
        with pytest.raises(PrivacyBudgetError):
            split_budget(-1.0)


class TestPrivacyBudget:
    def test_properties(self):
        budget = PrivacyBudget(4.0, label_fraction=0.5)
        assert budget.epsilon1 == 2.0
        assert budget.epsilon2 == 2.0
        assert budget.as_tuple() == (2.0, 2.0)

    def test_frozen(self):
        budget = PrivacyBudget(4.0)
        with pytest.raises(AttributeError):
            budget.epsilon = 5.0

    def test_validation(self):
        with pytest.raises(PrivacyBudgetError):
            PrivacyBudget(0.0)
        with pytest.raises(PrivacyBudgetError):
            PrivacyBudget(1.0, label_fraction=1.5)
