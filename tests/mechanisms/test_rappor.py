"""One-shot RAPPOR."""

import math

import numpy as np
import pytest

from repro.exceptions import AggregationError
from repro.mechanisms import Rappor


class TestConstruction:
    def test_epsilon_relation(self):
        """ε = 2h ln((1-f/2)/(f/2)) recovers the configured budget."""
        for eps, h in ((1.0, 1), (2.0, 2), (4.0, 4)):
            mech = Rappor(eps, 16, n_hashes=h)
            implied = 2 * h * math.log(mech.p / mech.q)
            assert implied == pytest.approx(eps)

    def test_rejects_zero_hashes(self):
        with pytest.raises(ValueError):
            Rappor(1.0, 16, n_hashes=0)

    def test_bloom_positions_deterministic(self):
        a = Rappor(1.0, 16, n_hashes=2)
        b = Rappor(1.0, 16, n_hashes=2)
        assert (a.encode(7) == b.encode(7)).all()


class TestProtocol:
    def test_encode_sets_at_most_h_bits(self):
        mech = Rappor(1.0, 32, n_hashes=2)
        for v in range(32):
            assert 1 <= mech.encode(v).sum() <= 2

    def test_report_shape(self, rng):
        mech = Rappor(1.0, 10, n_hashes=2, n_bits=32, rng=rng)
        assert mech.privatize(3).shape == (32,)

    def test_aggregate_rejects_bad_shape(self):
        mech = Rappor(1.0, 10, n_bits=32)
        with pytest.raises(AggregationError):
            mech.aggregate([np.zeros(31, dtype=np.uint8)])

    def test_estimate_rejects_bad_shape(self):
        mech = Rappor(1.0, 10, n_bits=32)
        with pytest.raises(AggregationError):
            mech.estimate(np.zeros(31), 100)


class TestDecoding:
    def test_recovers_heavy_hitters(self, rng):
        """NNLS decode identifies the dominant values (RAPPOR's job)."""
        mech = Rappor(4.0, 12, n_hashes=2, rng=rng)
        true = np.asarray([5000, 3000, 0, 0, 0, 0, 0, 0, 0, 0, 0, 2000])
        support = mech.simulate_support(true, rng=rng)
        estimate = mech.estimate(support, int(true.sum()))
        top3 = set(np.argsort(estimate)[-3:])
        assert top3 == {0, 1, 11}

    def test_estimate_scale_is_right(self, rng):
        mech = Rappor(4.0, 8, n_hashes=2, rng=rng)
        true = np.asarray([4000, 2000, 1000, 500, 300, 150, 40, 10])
        estimates = np.stack(
            [
                mech.estimate(mech.simulate_support(true, rng=rng), 8000)
                for _ in range(50)
            ]
        )
        # NNLS is biased at the tail; require the head to be within 15%.
        assert estimates.mean(axis=0)[0] == pytest.approx(4000, rel=0.15)

    def test_simulate_matches_protocol_moments(self, rng):
        mech = Rappor(2.0, 6, n_hashes=2, n_bits=24, rng=rng)
        true = np.asarray([300, 200, 100, 50, 30, 20])
        values = np.repeat(np.arange(6), true)
        proto = np.stack(
            [
                mech.aggregate([mech.privatize(int(v)) for v in values])
                for _ in range(60)
            ]
        )
        sim = np.stack([mech.simulate_support(true, rng=rng) for _ in range(300)])
        sigma = np.sqrt(sim.var(axis=0) / 300 + proto.var(axis=0) / 60)
        assert (np.abs(sim.mean(axis=0) - proto.mean(axis=0)) < 5 * sigma + 1e-9).all()
