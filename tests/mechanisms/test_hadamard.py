"""Hadamard response."""

import math

import numpy as np
import pytest

from repro.exceptions import AggregationError, DomainError
from repro.mechanisms import HadamardResponse
from repro.mechanisms.hadamard import _hadamard_entry, next_power_of_two


class TestHadamardEntries:
    def test_matches_scipy(self):
        from scipy.linalg import hadamard

        K = 16
        H = hadamard(K)
        rows = np.repeat(np.arange(K), K)
        cols = np.tile(np.arange(K), K)
        ours = _hadamard_entry(rows, cols).reshape(K, K)
        assert (ours == H).all()

    def test_next_power_of_two(self):
        assert next_power_of_two(1) == 1
        assert next_power_of_two(5) == 8
        assert next_power_of_two(8) == 8
        with pytest.raises(DomainError):
            next_power_of_two(0)


class TestProtocol:
    def test_matrix_size_covers_domain(self):
        mech = HadamardResponse(1.0, 100)
        assert mech.K >= 101
        assert mech.K & (mech.K - 1) == 0

    def test_report_structure(self, rng):
        mech = HadamardResponse(1.0, 10, rng=rng)
        j, sign = mech.privatize(3)
        assert 0 <= j < mech.K
        assert sign in (-1, 1)

    def test_aggregate_rejects_bad_sign(self):
        mech = HadamardResponse(1.0, 10)
        with pytest.raises(AggregationError):
            mech.aggregate([(0, 2)])

    def test_estimate_is_unbiased_protocol(self, rng):
        mech = HadamardResponse(3.0, 4, rng=rng)
        true = np.asarray([500, 300, 150, 50])
        values = np.repeat(np.arange(4), true)
        trials = np.stack(
            [
                mech.estimate(
                    mech.aggregate([mech.privatize(int(v)) for v in values]), 1000
                )
                for _ in range(200)
            ]
        )
        se = math.sqrt(mech.variance(1000, 500) / 200)
        assert np.abs(trials.mean(axis=0) - true).max() < 6 * se


class TestSimulation:
    def test_simulate_is_unbiased(self, rng):
        mech = HadamardResponse(1.0, 16, rng=rng)
        true = rng.multinomial(30_000, np.ones(16) / 16)
        trials = np.stack(
            [mech.estimate(mech.simulate_support(true, rng=rng), 30_000) for _ in range(300)]
        )
        se = math.sqrt(mech.variance(30_000, float(true.max())) / 300)
        assert np.abs(trials.mean(axis=0) - true).max() < 6 * se

    def test_communication_is_logarithmic(self):
        mech = HadamardResponse(1.0, 1 << 16)
        assert mech.communication_bits() <= 18 + 1
