"""Unary encoding family: SUE and OUE."""

import math

import numpy as np
import pytest

from repro.exceptions import AggregationError
from repro.mechanisms import (
    OptimizedUnaryEncoding,
    SymmetricUnaryEncoding,
    UnaryEncoding,
    oue_probabilities,
    ue_epsilon,
)


class TestProbabilities:
    def test_oue_constants(self):
        mech = OptimizedUnaryEncoding(1.0, 16)
        assert mech.p == 0.5
        assert mech.q == pytest.approx(1 / (math.e + 1))

    def test_sue_constants(self):
        mech = SymmetricUnaryEncoding(2.0, 16)
        e_half = math.exp(1.0)
        assert mech.p == pytest.approx(e_half / (e_half + 1))
        assert mech.q == pytest.approx(1 - mech.p)

    def test_implied_epsilon_matches_theorem1(self):
        """ε = ln[p(1-q)/((1-p)q)] recovers the configured budget."""
        for eps in (0.5, 1.0, 3.0):
            oue = OptimizedUnaryEncoding(eps, 8)
            assert ue_epsilon(oue.p, oue.q) == pytest.approx(eps)
            sue = SymmetricUnaryEncoding(eps, 8)
            assert ue_epsilon(sue.p, sue.q) == pytest.approx(eps)

    def test_oue_helper(self):
        p, q = oue_probabilities(2.0)
        assert p == 0.5
        assert q == pytest.approx(1 / (math.exp(2.0) + 1))

    def test_generic_ue_validates_p_q(self):
        with pytest.raises(ValueError):
            UnaryEncoding(1.0, 4, p=0.2, q=0.5)
        with pytest.raises(ValueError):
            UnaryEncoding(1.0, 4, p=0.5, q=0.0)

    def test_ue_epsilon_rejects_degenerate(self):
        with pytest.raises(ValueError):
            ue_epsilon(1.0, 0.5)


class TestEncoding:
    def test_one_hot(self):
        mech = OptimizedUnaryEncoding(1.0, 6)
        bits = mech.encode(4)
        assert bits.tolist() == [0, 0, 0, 0, 1, 0]

    def test_report_shape_and_dtype(self, rng):
        mech = OptimizedUnaryEncoding(1.0, 12, rng=rng)
        report = mech.privatize(3)
        assert report.shape == (12,)
        assert report.dtype == np.uint8
        assert set(np.unique(report)) <= {0, 1}

    def test_bit_flip_rates(self, rng):
        mech = OptimizedUnaryEncoding(1.0, 2, rng=rng)
        n = 20_000
        reports = np.stack([mech.privatize(0) for _ in range(n)])
        ones_rate = reports[:, 0].mean()
        zeros_rate = reports[:, 1].mean()
        assert abs(ones_rate - mech.p) < 5 * math.sqrt(mech.p * (1 - mech.p) / n)
        assert abs(zeros_rate - mech.q) < 5 * math.sqrt(mech.q * (1 - mech.q) / n)

    def test_perturb_bits_rejects_bad_shape(self, rng):
        mech = OptimizedUnaryEncoding(1.0, 4, rng=rng)
        with pytest.raises(AggregationError):
            mech.perturb_bits(np.zeros(5, dtype=np.uint8))


class TestServerSide:
    def test_aggregate_sums_bits(self):
        mech = OptimizedUnaryEncoding(1.0, 3)
        reports = [np.asarray(bits, dtype=np.uint8) for bits in ([1, 0, 1], [0, 0, 1])]
        assert mech.aggregate(reports).tolist() == [1, 0, 2]

    def test_aggregate_rejects_bad_shape(self):
        mech = OptimizedUnaryEncoding(1.0, 3)
        with pytest.raises(AggregationError):
            mech.aggregate([np.zeros(4, dtype=np.uint8)])

    def test_estimate_inverts_expected_support(self):
        mech = OptimizedUnaryEncoding(2.0, 4)
        true = np.asarray([500, 300, 150, 50])
        expected = true * mech.p + (1000 - true) * mech.q
        assert np.allclose(mech.estimate(expected, 1000), true)

    def test_estimate_is_unbiased(self, rng):
        mech = OptimizedUnaryEncoding(1.0, 6, rng=rng)
        true = np.asarray([5000, 2500, 1500, 700, 200, 100])
        trials = np.stack(
            [mech.estimate(mech.simulate_support(true, rng=rng), 10_000) for _ in range(400)]
        )
        se = math.sqrt(mech.variance(10_000, 5000) / 400)
        assert np.abs(trials.mean(axis=0) - true).max() < 6 * se


class TestSimulation:
    def test_simulate_matches_protocol_moments(self, rng):
        mech = OptimizedUnaryEncoding(1.0, 4, rng=rng)
        true = np.asarray([300, 200, 80, 20])
        values = np.repeat(np.arange(4), true)
        sim = np.stack([mech.simulate_support(true, rng=rng) for _ in range(300)])
        proto = np.stack(
            [
                mech.aggregate([mech.privatize(int(v)) for v in values])
                for _ in range(60)
            ]
        )
        sigma = np.sqrt(sim.var(axis=0) / 300 + proto.var(axis=0) / 60)
        assert (np.abs(sim.mean(axis=0) - proto.mean(axis=0)) < 5 * sigma + 1e-9).all()

    def test_simulate_variance_matches_theory(self, rng):
        mech = OptimizedUnaryEncoding(1.0, 2, rng=rng)
        true = np.asarray([600, 400])
        estimates = np.stack(
            [mech.estimate(mech.simulate_support(true, rng=rng), 1000) for _ in range(2000)]
        )
        theory = mech.variance(1000, true_count=600)
        empirical = estimates[:, 0].var()
        assert empirical == pytest.approx(theory, rel=0.15)


class TestVarianceOrdering:
    def test_oue_beats_sue(self):
        """OUE is the variance-optimal UE (Wang et al.)."""
        for eps in (0.5, 1.0, 2.0, 4.0):
            oue = OptimizedUnaryEncoding(eps, 32)
            sue = SymmetricUnaryEncoding(eps, 32)
            assert oue.variance(10_000) < sue.variance(10_000)

    def test_communication_is_domain_size(self):
        assert OptimizedUnaryEncoding(1.0, 37).communication_bits() == 37
