"""Kernel backend registry: selection semantics, NumPy reference
behaviour, and (where the toolchain is present) draw-for-draw and
estimate equivalence of the numba twins.

The numba half of this module runs only where numba imports — CI's
backend-matrix job; the numpy-only environment must pass the rest of the
file unchanged (that IS the fallback acceptance criterion).
"""

import numpy as np
import pytest

from repro.exceptions import AggregationError, ConfigurationError
from repro.mechanisms import (
    GeneralizedRandomResponse,
    HadamardResponse,
    OptimalLocalHashing,
    OptimizedUnaryEncoding,
    Rappor,
    SymmetricUnaryEncoding,
)
from repro.mechanisms import backends
from repro.mechanisms.backends import (
    KERNEL_NAMES,
    KernelBackend,
    backend_info,
    get_kernel,
    resolve_backend,
    use_backend,
)
from repro.mechanisms.backends import numba_backend, numpy_backend
from repro.obs import metrics as obs_metrics


class TestResolution:
    def test_numpy_always_resolves(self):
        backend = resolve_backend("numpy")
        assert backend.name == "numpy"
        assert backend.gil_free is False

    def test_auto_degrades_without_numba(self):
        backend = resolve_backend("auto")
        expected = "numba" if numba_backend.available() else "numpy"
        assert backend.name == expected

    def test_explicit_numba_without_toolchain_is_an_error(self):
        if numba_backend.available():
            pytest.skip("numba installed: the explicit request succeeds")
        with pytest.raises(ConfigurationError):
            resolve_backend("numba")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_backend("fortran")

    def test_env_var_feeds_resolution(self, monkeypatch):
        monkeypatch.setenv(backends.BACKEND_ENV, "numpy")
        assert resolve_backend(None).name == "numpy"
        monkeypatch.setenv(backends.BACKEND_ENV, "cython")
        with pytest.raises(ConfigurationError):
            resolve_backend(None)

    def test_use_backend_restores_previous_selection(self):
        before = backends.active_backend()
        with use_backend("numpy") as active:
            assert active.name == "numpy"
            assert backends.active_backend() is active
        assert backends.active_backend() is before

    def test_backend_info_shape(self):
        with use_backend("numpy"):
            info = backend_info()
        assert info["name"] == "numpy"
        assert info["requested"] == "numpy"
        assert info["gil_free"] is False
        assert isinstance(info["numba_available"], bool)

    def test_partial_backend_falls_back_per_kernel(self):
        sparse = KernelBackend(name="sparse", gil_free=False, kernels={})
        for name in KERNEL_NAMES:
            assert sparse.kernel(name) is numpy_backend.KERNELS[name]
        with pytest.raises(ConfigurationError):
            sparse.kernel("warp_drive")

    def test_selection_is_recorded_in_telemetry(self):
        with obs_metrics.enabled():
            with use_backend("numpy"):
                backends.set_backend("numpy")
                snapshot = obs_metrics.get_registry().snapshot()
        counters = snapshot["counters"]
        assert counters.get('kernel_backend_selected_total{backend="numpy"}', 0) >= 1
        assert snapshot["gauges"]["kernel_backend_gil_free"] == 0.0


class TestNumpyKernels:
    """The reference implementations the twins are pinned against."""

    def test_categorical_support_counts_and_fused_bounds(self):
        kernel = numpy_backend.categorical_support
        counts = kernel(np.asarray([0, 2, 2, 3]), 5, "test")
        np.testing.assert_array_equal(counts, [1, 0, 2, 1, 0])
        assert counts.dtype == np.int64
        with pytest.raises(AggregationError):
            kernel(np.asarray([0, -1]), 5, "test")
        with pytest.raises(AggregationError):
            kernel(np.asarray([0, 5]), 5, "test")

    def test_grouped_scatter_matches_add_at_reference(self):
        rng = np.random.default_rng(0)
        groups = rng.integers(0, 7, size=500)
        bits = (rng.random((500, 12)) < 0.3).astype(np.int64)
        reference = np.zeros((7, 12), dtype=np.int64)
        np.add.at(reference, groups, bits)
        out = numpy_backend.grouped_scatter(groups, bits, 7)
        np.testing.assert_array_equal(out, reference)
        assert out.dtype == np.int64

    def test_grouped_scatter_all_zero_bits(self):
        out = numpy_backend.grouped_scatter(
            np.asarray([0, 1, 2]), np.zeros((3, 4), dtype=np.int64), 3
        )
        np.testing.assert_array_equal(out, np.zeros((3, 4), dtype=np.int64))

    def test_bulk_hash_support_blocking_is_invisible(self):
        rng = np.random.default_rng(1)
        n, d, g = 200, 37, 5
        a = rng.integers(1, numpy_backend.PRIME, size=n).astype(np.uint64)
        b = rng.integers(0, numpy_backend.PRIME, size=n).astype(np.uint64)
        reports = rng.integers(0, g, size=n)
        whole = numpy_backend.bulk_hash_support(a, b, reports, d, g)
        blocked = numpy_backend.bulk_hash_support(
            a, b, reports, d, g, block_elements=64
        )
        np.testing.assert_array_equal(whole, blocked)

    def test_universal_hash_range(self):
        values = np.arange(100, dtype=np.uint64)
        hashed = numpy_backend.universal_hash(values, 12345, 678, 7)
        assert hashed.min() >= 0 and hashed.max() < 7


class TestReportArrayFastPaths:
    """The list()-free conversion satellites keep generator support."""

    def test_as_report_array_accepts_generators(self):
        from repro.mechanisms.kernels import as_report_array

        arr = as_report_array(int(v) for v in range(5))
        np.testing.assert_array_equal(arr, np.arange(5))

    def test_as_report_array_accepts_lists_and_arrays(self):
        from repro.mechanisms.kernels import as_report_array

        np.testing.assert_array_equal(as_report_array([3, 1]), [3, 1])
        np.testing.assert_array_equal(
            as_report_array(np.asarray([[1], [2]])), [1, 2]
        )

    def test_as_report_matrix_accepts_generators_and_sequences(self):
        from repro.mechanisms.kernels import as_report_matrix

        rows = [np.asarray([1, 0, 1]), np.asarray([0, 1, 0])]
        out = as_report_matrix((row for row in rows), 3, "test")
        np.testing.assert_array_equal(out, np.asarray(rows))
        out = as_report_matrix(rows, 3, "test")
        np.testing.assert_array_equal(out, np.asarray(rows))
        assert as_report_matrix([], 3, "test").shape == (0, 3)


# ----------------------------------------------------------------------
# numba twins (CI backend-matrix job; skipped where numba is absent)
# ----------------------------------------------------------------------
def _oracles(rng_seed):
    """One oracle per compiled kernel path, freshly seeded."""
    return [
        GeneralizedRandomResponse(1.0, 32, rng=rng_seed),
        OptimizedUnaryEncoding(1.0, 24, rng=rng_seed),
        SymmetricUnaryEncoding(1.0, 24, rng=rng_seed),
        OptimalLocalHashing(1.0, 32, rng=rng_seed),
        Rappor(1.0, 24, rng=rng_seed),
        HadamardResponse(1.0, 32, rng=rng_seed),
    ]


@pytest.mark.skipif(not numba_backend.available(), reason="numba not installed")
class TestNumbaTwins:
    def test_kernel_table_is_complete(self):
        assert set(numba_backend.KERNELS) == set(numpy_backend.KERNELS)

    def test_perturb_onehot_draw_for_draw(self):
        positions = np.random.default_rng(0).integers(0, 16, size=400)
        reference = numpy_backend.perturb_onehot(
            positions, 16, 0.75, 0.25, np.random.default_rng(7)
        )
        compiled = numba_backend.perturb_onehot(
            positions, 16, 0.75, 0.25, np.random.default_rng(7)
        )
        np.testing.assert_array_equal(reference, compiled)

    def test_universal_hash_bit_for_bit(self):
        rng = np.random.default_rng(1)
        values = rng.integers(0, 1000, size=500).astype(np.uint64)
        a = int(rng.integers(1, numpy_backend.PRIME))
        b = int(rng.integers(0, numpy_backend.PRIME))
        np.testing.assert_array_equal(
            numpy_backend.universal_hash(values, a, b, 17),
            numba_backend.universal_hash(values, a, b, 17),
        )

    def test_bulk_hash_support_bit_for_bit(self):
        rng = np.random.default_rng(2)
        n, d, g = 300, 41, 5
        a = rng.integers(1, numpy_backend.PRIME, size=n).astype(np.uint64)
        b = rng.integers(0, numpy_backend.PRIME, size=n).astype(np.uint64)
        reports = rng.integers(0, g, size=n)
        np.testing.assert_array_equal(
            numpy_backend.bulk_hash_support(a, b, reports, d, g),
            numba_backend.bulk_hash_support(a, b, reports, d, g),
        )

    def test_categorical_support_twin_and_errors(self):
        reports = np.random.default_rng(3).integers(0, 9, size=1000)
        np.testing.assert_array_equal(
            numpy_backend.categorical_support(reports, 9),
            numba_backend.categorical_support(reports, 9),
        )
        for bad in ([-1], [9]):
            with pytest.raises(AggregationError):
                numba_backend.categorical_support(np.asarray(bad), 9)

    def test_grouped_scatter_twin(self):
        rng = np.random.default_rng(4)
        groups = rng.integers(0, 6, size=700)
        bits = (rng.random((700, 10)) < 0.4).astype(np.int64)
        np.testing.assert_array_equal(
            numpy_backend.grouped_scatter(groups, bits, 6),
            numba_backend.grouped_scatter(groups, bits, 6),
        )

    @pytest.mark.parametrize("index", range(6))
    def test_estimate_equivalence_per_oracle(self, index):
        """Seeded end-to-end runs agree exactly across backends."""
        values = np.random.default_rng(100 + index).integers(0, 24, size=4000)
        estimates = {}
        for name in ("numpy", "numba"):
            with use_backend(name):
                oracle = _oracles(42)[index]
                values_in = values % oracle.domain_size
                reports = oracle.privatize_many(values_in)
                support = oracle.aggregate_batch(reports)
                estimates[name] = oracle.estimate(support, values_in.size)
        np.testing.assert_array_equal(estimates["numpy"], estimates["numba"])

    def test_get_kernel_dispatches_to_numba(self):
        with use_backend("numba"):
            assert get_kernel("grouped_scatter") is numba_backend.grouped_scatter
            assert backends.active_backend().gil_free is True
