"""Generalized randomized response."""

import math

import numpy as np
import pytest

from repro.exceptions import AggregationError, DomainError, PrivacyBudgetError
from repro.mechanisms import GeneralizedRandomResponse, grr_probabilities


class TestProbabilities:
    def test_p_q_definition(self):
        mech = GeneralizedRandomResponse(1.0, 10)
        e = math.exp(1.0)
        assert mech.p == pytest.approx(e / (e + 9))
        assert mech.q == pytest.approx(1 / (e + 9))

    def test_privacy_ratio_is_exp_epsilon(self):
        for eps in (0.1, 0.5, 1.0, 4.0):
            mech = GeneralizedRandomResponse(eps, 7)
            assert mech.p / mech.q == pytest.approx(math.exp(eps))

    def test_probabilities_sum_to_one(self):
        mech = GeneralizedRandomResponse(2.0, 12)
        assert mech.p + (mech.domain_size - 1) * mech.q == pytest.approx(1.0)

    def test_helper_matches_class(self):
        p, q = grr_probabilities(1.5, 6)
        mech = GeneralizedRandomResponse(1.5, 6)
        assert (p, q) == (mech.p, mech.q)

    def test_domain_of_one_is_deterministic(self):
        mech = GeneralizedRandomResponse(1.0, 1)
        assert mech.privatize(0) == 0
        assert mech.p == 1.0


class TestValidation:
    def test_rejects_nonpositive_epsilon(self):
        with pytest.raises(PrivacyBudgetError):
            GeneralizedRandomResponse(0.0, 5)
        with pytest.raises(PrivacyBudgetError):
            GeneralizedRandomResponse(-1.0, 5)

    def test_rejects_nan_epsilon(self):
        with pytest.raises(PrivacyBudgetError):
            GeneralizedRandomResponse(float("nan"), 5)

    def test_rejects_bad_domain(self):
        with pytest.raises(DomainError):
            GeneralizedRandomResponse(1.0, 0)

    def test_rejects_out_of_domain_value(self):
        mech = GeneralizedRandomResponse(1.0, 5)
        with pytest.raises(DomainError):
            mech.privatize(5)
        with pytest.raises(DomainError):
            mech.privatize(-1)

    def test_aggregate_rejects_foreign_report(self):
        mech = GeneralizedRandomResponse(1.0, 5)
        with pytest.raises(AggregationError):
            mech.aggregate([0, 1, 9])


class TestClientSide:
    def test_reports_in_domain(self, rng):
        mech = GeneralizedRandomResponse(1.0, 5, rng=rng)
        reports = [mech.privatize(3) for _ in range(200)]
        assert all(0 <= r < 5 for r in reports)

    def test_keep_rate_matches_p(self, rng):
        mech = GeneralizedRandomResponse(2.0, 4, rng=rng)
        n = 20_000
        keeps = sum(mech.privatize(2) == 2 for _ in range(n))
        # Binomial(n, p): 5 sigma band.
        sigma = math.sqrt(n * mech.p * (1 - mech.p))
        assert abs(keeps - n * mech.p) < 5 * sigma

    def test_privatize_many_matches_domain(self, rng):
        mech = GeneralizedRandomResponse(1.0, 6, rng=rng)
        out = mech.privatize_many(np.asarray([0, 1, 2, 3, 4, 5] * 10))
        assert len(out) == 60
        assert all(0 <= v < 6 for v in out)

    def test_privatize_many_rejects_bad_values(self, rng):
        mech = GeneralizedRandomResponse(1.0, 6, rng=rng)
        with pytest.raises(DomainError):
            mech.privatize_many(np.asarray([0, 6]))

    def test_privatize_many_returns_array(self, rng):
        mech = GeneralizedRandomResponse(1.0, 6, rng=rng)
        out = mech.privatize_many(np.asarray([0, 1, 2]))
        assert isinstance(out, np.ndarray)
        assert out.dtype == np.int64
        # Degenerate domain keeps the array contract.
        trivial = GeneralizedRandomResponse(1.0, 1, rng=rng).privatize_many([0, 0])
        assert isinstance(trivial, np.ndarray)
        assert trivial.tolist() == [0, 0]

    def test_aggregate_accepts_array_reports(self, rng):
        mech = GeneralizedRandomResponse(1.0, 6, rng=rng)
        reports = mech.privatize_many(np.asarray([0, 1, 2, 3, 4, 5]))
        np.testing.assert_array_equal(
            mech.aggregate(reports), mech.aggregate(list(reports))
        )


class TestServerSide:
    def test_aggregate_counts(self):
        mech = GeneralizedRandomResponse(1.0, 4)
        support = mech.aggregate([0, 1, 1, 3, 3, 3])
        assert support.tolist() == [1, 2, 0, 3]

    def test_estimate_is_unbiased(self, rng):
        mech = GeneralizedRandomResponse(1.0, 5, rng=rng)
        true = np.asarray([4000, 3000, 2000, 800, 200])
        trials = np.stack(
            [mech.estimate(mech.simulate_support(true, rng=rng), 10_000) for _ in range(400)]
        )
        se = np.sqrt(mech.variance(10_000, true_count=4000) / 400)
        assert np.abs(trials.mean(axis=0) - true).max() < 6 * se

    def test_estimate_roundtrip_without_noise(self):
        # With p=1 impossible; instead verify the calibration inverts the
        # expected support analytically.
        mech = GeneralizedRandomResponse(2.0, 3)
        true = np.asarray([700, 200, 100])
        expected_support = true * mech.p + (1000 - true) * mech.q
        estimate = mech.estimate(expected_support, 1000)
        assert np.allclose(estimate, true)


class TestSimulation:
    def test_simulate_preserves_total(self, rng):
        mech = GeneralizedRandomResponse(1.0, 8, rng=rng)
        true = rng.multinomial(5000, np.ones(8) / 8)
        support = mech.simulate_support(true, rng=rng)
        assert support.sum() == 5000
        assert (support >= 0).all()

    def test_simulate_matches_protocol_moments(self, rng):
        """The exact-simulation fast path and the literal per-user path
        must induce the same support distribution (mean check)."""
        mech = GeneralizedRandomResponse(1.0, 4, rng=rng)
        true = np.asarray([500, 300, 150, 50])
        values = np.repeat(np.arange(4), true)
        sim = np.stack([mech.simulate_support(true, rng=rng) for _ in range(300)])
        proto = np.stack(
            [mech.aggregate(mech.privatize_many(values)) for _ in range(300)]
        )
        # Means within 5 joint-sigma of each other.
        sigma = np.sqrt(sim.var(axis=0) / 300 + proto.var(axis=0) / 300)
        assert (np.abs(sim.mean(axis=0) - proto.mean(axis=0)) < 5 * sigma + 1e-9).all()

    def test_simulate_large_domain_is_exact_shape(self, rng):
        mech = GeneralizedRandomResponse(0.5, 10_000, rng=rng)
        true = np.zeros(10_000, dtype=np.int64)
        true[42] = 1000
        support = mech.simulate_support(true, rng=rng)
        assert support.sum() == 1000
        assert support.shape == (10_000,)

    def test_simulate_rejects_bad_counts(self, rng):
        mech = GeneralizedRandomResponse(1.0, 4, rng=rng)
        with pytest.raises(AggregationError):
            mech.simulate_support(np.asarray([1, 2, 3]), rng=rng)
        with pytest.raises(AggregationError):
            mech.simulate_support(np.asarray([1, -2, 3, 4]), rng=rng)


class TestAccounting:
    def test_variance_positive_and_decreasing_in_epsilon(self):
        variances = [
            GeneralizedRandomResponse(eps, 10).variance(1000) for eps in (0.5, 1, 2, 4)
        ]
        assert all(v > 0 for v in variances)
        assert variances == sorted(variances, reverse=True)

    def test_communication_bits(self):
        assert GeneralizedRandomResponse(1.0, 1024).communication_bits() == 10
        assert GeneralizedRandomResponse(1.0, 2).communication_bits() == 1
