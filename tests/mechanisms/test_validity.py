"""Validity perturbation mechanism (paper Section IV-A)."""

import math

import numpy as np
import pytest

from repro.exceptions import AggregationError, DomainError
from repro.mechanisms import ValidityPerturbation
from repro.types import INVALID_ITEM


class TestEncoding:
    def test_valid_item_sets_item_bit(self):
        mech = ValidityPerturbation(1.0, 4)
        assert mech.encode(2).tolist() == [0, 0, 1, 0, 0]

    def test_invalid_item_sets_flag(self):
        mech = ValidityPerturbation(1.0, 4)
        assert mech.encode(INVALID_ITEM).tolist() == [0, 0, 0, 0, 1]

    def test_report_length_is_domain_plus_flag(self):
        mech = ValidityPerturbation(1.0, 9)
        assert mech.report_length == 10
        assert mech.flag_position == 9
        assert mech.privatize(0).shape == (10,)

    def test_rejects_out_of_domain(self):
        mech = ValidityPerturbation(1.0, 4)
        with pytest.raises(DomainError):
            mech.encode(4)

    def test_oue_probabilities_imply_epsilon(self):
        """VP is OUE over d+1 values: ε = ln[p(1-q)/((1-p)q)] (Theorem 1)."""
        for eps in (0.5, 1.0, 3.0):
            mech = ValidityPerturbation(eps, 8)
            implied = math.log(mech.p * (1 - mech.q) / ((1 - mech.p) * mech.q))
            assert implied == pytest.approx(eps)


class TestAggregation:
    def test_flag_filtering(self, rng):
        """A report with a set flag contributes only to the flag support."""
        mech = ValidityPerturbation(1.0, 3, rng=rng)
        flagged = np.asarray([1, 1, 1, 1], dtype=np.uint8)
        clean = np.asarray([1, 0, 1, 0], dtype=np.uint8)
        support = mech.aggregate([flagged, clean])
        assert support.tolist() == [1, 0, 1, 1]

    def test_aggregate_rejects_bad_shape(self):
        mech = ValidityPerturbation(1.0, 3)
        with pytest.raises(AggregationError):
            mech.aggregate([np.zeros(3, dtype=np.uint8)])

    def test_estimate_unbiased_with_invalid_users(self, rng):
        """The calibration removes the invalid users' noise in expectation
        — the mechanism's whole purpose."""
        mech = ValidityPerturbation(1.0, 4, rng=rng)
        true = np.asarray([3000, 1500, 400, 100])
        m = 5000  # as many invalid users as valid ones
        trials = np.stack(
            [
                mech.estimate(mech.simulate_support(true, rng=rng, n_invalid=m), 10_000)
                for _ in range(500)
            ]
        )
        se = math.sqrt(mech.variance(10_000, 3000) / 500)
        assert np.abs(trials.mean(axis=0) - true).max() < 6 * se

    def test_invalid_count_estimate(self, rng):
        mech = ValidityPerturbation(1.0, 4, rng=rng)
        true = np.asarray([500, 300, 100, 100])
        estimates = [
            mech.estimate_invalid_count(
                mech.simulate_support(true, rng=rng, n_invalid=2000), 3000
            )
            for _ in range(300)
        ]
        assert np.mean(estimates) == pytest.approx(2000, rel=0.05)


class TestTheorem5:
    def test_invalid_noise_expectation_formula(self):
        mech = ValidityPerturbation(1.0, 10)
        m = 1000
        assert mech.invalid_noise_expectation(m) == pytest.approx(
            m * mech.q * (1 - mech.p)
        )

    def test_invalid_noise_beats_random_replacement(self):
        """Theorem 5 < Theorem 4: the VP noise is strictly smaller than
        random-replacement noise for any domain size."""
        mech = ValidityPerturbation(1.0, 10)
        m, d = 1000, 10
        random_replacement = m * mech.q + (m / d) * (mech.p - mech.q)
        assert mech.invalid_noise_expectation(m) < random_replacement

    def test_empirical_invalid_noise(self, rng):
        """Measured raw-count noise from invalid users matches mq(1-p)."""
        mech = ValidityPerturbation(1.0, 5, rng=rng)
        m = 4000
        supports = np.stack(
            [
                mech.simulate_support(np.zeros(5, dtype=np.int64), rng=rng, n_invalid=m)
                for _ in range(300)
            ]
        )
        per_item = supports[:, :5].mean(axis=0)
        expected = m * mech.q * (1 - mech.p)
        assert np.abs(per_item - expected).max() < 5 * math.sqrt(expected / 300) + 1.0


class TestProtocolAgreement:
    def test_simulate_matches_protocol_moments(self, rng):
        mech = ValidityPerturbation(1.0, 3, rng=rng)
        true = np.asarray([200, 120, 80])
        values = np.concatenate([np.repeat(np.arange(3), true), np.full(100, INVALID_ITEM)])
        proto = np.stack(
            [
                mech.aggregate([mech.privatize(int(v)) for v in values])
                for _ in range(60)
            ]
        )
        sim = np.stack(
            [mech.simulate_support(true, rng=rng, n_invalid=100) for _ in range(300)]
        )
        sigma = np.sqrt(sim.var(axis=0) / 300 + proto.var(axis=0) / 60)
        assert (np.abs(sim.mean(axis=0) - proto.mean(axis=0)) < 5 * sigma + 1e-9).all()

    def test_simulate_rejects_negative_invalid(self, rng):
        mech = ValidityPerturbation(1.0, 3, rng=rng)
        with pytest.raises(DomainError):
            mech.simulate_support(np.asarray([1, 2, 3]), rng=rng, n_invalid=-1)
