"""Fig. 8 — per-class F1 on the JD stand-in.

Regenerates the paper's Fig. 8 via :mod:`repro.bench.experiments`;
the report is printed and saved to benchmarks/results/fig8.txt.
"""


def test_fig8(run_paper_experiment):
    report = run_paper_experiment("fig8")
    assert report.strip()
