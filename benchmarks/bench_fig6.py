"""Fig. 6 — frequency-estimation RMSE vs epsilon.

Regenerates the paper's Fig. 6 via :mod:`repro.bench.experiments`;
the report is printed and saved to benchmarks/results/fig6.txt.
"""


def test_fig6(run_paper_experiment):
    report = run_paper_experiment("fig6")
    assert report.strip()
