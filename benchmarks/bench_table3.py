"""Table III — optimization ablation on the Anime stand-in.

Regenerates the paper's Table III via :mod:`repro.bench.experiments`;
the report is printed and saved to benchmarks/results/table3.txt.
"""


def test_table3(run_paper_experiment):
    report = run_paper_experiment("table3")
    assert report.strip()
