#!/usr/bin/env python
"""Bench-regression gate: compare fresh BENCH_*.json artifacts against
committed baselines and fail on >30% throughput drops.

Thin wrapper over :mod:`repro.bench.regression` so CI can run it without
installing the package (``PYTHONPATH=src python benchmarks/compare_bench.py
BENCH_stream.json fresh/BENCH_stream.json ...``).
"""

import sys
from pathlib import Path

if __name__ == "__main__":
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))
    from repro.bench.regression import main

    raise SystemExit(main())
