"""Fig. 9 — top-k F1/NCR vs k on the JD stand-in.

Regenerates the paper's Fig. 9 via :mod:`repro.bench.experiments`;
the report is printed and saved to benchmarks/results/fig9.txt.
"""


def test_fig9(run_paper_experiment):
    report = run_paper_experiment("fig9")
    assert report.strip()
