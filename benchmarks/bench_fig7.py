"""Fig. 7 — top-k F1/NCR vs epsilon on Anime/JD stand-ins.

Regenerates the paper's Fig. 7 via :mod:`repro.bench.experiments`;
the report is printed and saved to benchmarks/results/fig7.txt.
"""


def test_fig7(run_paper_experiment):
    report = run_paper_experiment("fig7")
    assert report.strip()
