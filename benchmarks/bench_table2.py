"""Table II — complexity model + measured report bits.

Regenerates the paper's Table II via :mod:`repro.bench.experiments`;
the report is printed and saved to benchmarks/results/table2.txt.
"""


def test_table2(run_paper_experiment):
    report = run_paper_experiment("table2")
    assert report.strip()
