"""Fig. 12 — parameter a/b sweeps.

Regenerates the paper's Fig. 12 via :mod:`repro.bench.experiments`;
the report is printed and saved to benchmarks/results/fig12.txt.
"""


def test_fig12(run_paper_experiment):
    report = run_paper_experiment("fig12")
    assert report.strip()
