"""Fig. 11 — privacy-budget split sweep.

Regenerates the paper's Fig. 11 via :mod:`repro.bench.experiments`;
the report is printed and saved to benchmarks/results/fig11.txt.
"""


def test_fig11(run_paper_experiment):
    report = run_paper_experiment("fig11")
    assert report.strip()
