"""Table I — variance coefficients (closed form vs paper).

Regenerates the paper's Table I via :mod:`repro.bench.experiments`;
the report is printed and saved to benchmarks/results/table1.txt.
"""


def test_table1(run_paper_experiment):
    report = run_paper_experiment("table1")
    assert report.strip()
