"""Fig. 10 — class-count sweeps on SYN3/SYN4.

Regenerates the paper's Fig. 10 via :mod:`repro.bench.experiments`;
the report is printed and saved to benchmarks/results/fig10.txt.
"""


def test_fig10(run_paper_experiment):
    report = run_paper_experiment("fig10")
    assert report.strip()
