"""Streaming ingestion throughput — reports/sec at 1M+ users.

Runs :func:`repro.bench.stream.run_stream_benchmark` once under the
pytest-benchmark timer; the report lands in benchmarks/results/stream.txt
and the machine-readable artifact in BENCH_stream.json (repo root) so
successive PRs can track the throughput trajectory.
"""

from repro.bench.reporting import bench_scale, emit
from repro.bench.stream import run_stream_benchmark


def test_stream(benchmark):
    report, payload = benchmark.pedantic(
        lambda: run_stream_benchmark(scale=bench_scale()), iterations=1, rounds=1
    )
    emit("stream", report)
    assert "reports/sec" in report
    # The quick scale must sustain a seven-figure stream per framework.
    assert payload["total_reports"] >= 1_000_000
