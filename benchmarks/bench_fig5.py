"""Fig. 5 — empirical variance vs PMI and class amount.

Regenerates the paper's Fig. 5 via :mod:`repro.bench.experiments`;
the report is printed and saved to benchmarks/results/fig5.txt.
"""


def test_fig5(run_paper_experiment):
    report = run_paper_experiment("fig5")
    assert report.strip()
