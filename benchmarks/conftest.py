"""Shared machinery for the paper-reproduction benches.

Each bench file regenerates one table/figure of the paper.  The heavy
experiment body runs exactly once inside ``benchmark.pedantic`` (so
pytest-benchmark reports its wall time without re-running it), and the
resulting report is printed and persisted under ``benchmarks/results/``.

Set ``REPRO_BENCH_SCALE=full`` for the paper-sized sweeps (minutes to
hours); the default ``quick`` scale finishes the whole suite in a few
minutes while preserving the paper's orderings.
"""

from __future__ import annotations

import pytest

from repro.bench import emit, run_experiment


@pytest.fixture
def run_paper_experiment(benchmark):
    """Run one experiment once, time it, print and persist the report."""

    def runner(name: str, seed: int = 0) -> str:
        report = benchmark.pedantic(
            lambda: run_experiment(name, seed=seed), iterations=1, rounds=1
        )
        emit(name, report)
        return report

    return runner
